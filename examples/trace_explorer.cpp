/**
 * @file
 * Trace explorer: characterise a serverless invocation trace the way
 * Sec. 2/3 of the paper does -- periodicity census, harmonic counts,
 * inter-arrival statistics and per-class breakdowns. Run it on the
 * bundled synthetic generator, or point it at a real Azure-format
 * CSV:
 *
 *   ./trace_explorer [azure_trace.csv]
 */

#include <algorithm>
#include <iostream>
#include <map>

#include "common/table.hh"
#include "math/stats.hh"
#include "trace/azure_loader.hh"
#include "trace/synthetic.hh"
#include "trace/trace_stats.hh"

int
main(int argc, char **argv)
{
    using namespace iceb;

    trace::Trace tr = [&] {
        if (argc > 1)
            return trace::loadAzureCsvFile(argv[1]);
        trace::SyntheticConfig config;
        config.num_functions = 300;
        config.num_intervals = 1440;
        return trace::SyntheticTraceGenerator(config).generate();
    }();

    std::cout << "trace: " << tr.numFunctions() << " functions, "
              << tr.totalInvocations() << " invocations over "
              << tr.numIntervals() << " intervals\n\n";

    const trace::TraceCharacter character =
        trace::characterizeTrace(tr);

    TextTable census("Trace characterisation (cf. paper Figs. 4-5)");
    census.setHeader({"metric", "value"});
    census.addRow({"periodic functions",
                   TextTable::pct(character.fraction_periodic)});
    census.addRow({"multi-harmonic functions (>= 2)",
                   TextTable::pct(character.fraction_multi_harmonic)});
    census.addRow({"functions with < 10 harmonics",
                   TextTable::pct(character.fraction_under_ten)});
    census.addRow({"median harmonic count",
                   TextTable::num(
                       character.harmonic_cdf.quantile(0.5), 0)});
    census.print(std::cout);

    // Per-class inventory (synthetic traces carry their class).
    std::map<trace::FunctionClass, std::pair<std::size_t, double>>
        classes;
    for (const auto &fn : tr.functions()) {
        auto &entry = classes[fn.cls];
        entry.first += 1;
        entry.second += static_cast<double>(fn.totalInvocations());
    }
    TextTable breakdown("Per-class breakdown");
    breakdown.setHeader({"class", "functions", "invocations",
                         "mean gap (min)"});
    for (const auto &[cls, entry] : classes) {
        double gap_sum = 0.0;
        std::size_t gap_count = 0;
        for (const auto &fn : tr.functions()) {
            if (fn.cls != cls)
                continue;
            const std::vector<double> gaps =
                trace::interArrivalIntervals(fn);
            if (!gaps.empty()) {
                gap_sum += math::mean(gaps);
                ++gap_count;
            }
        }
        breakdown.addRow({
            trace::functionClassName(cls),
            std::to_string(entry.first),
            TextTable::num(entry.second, 0),
            gap_count ? TextTable::num(gap_sum / gap_count, 1) : "-",
        });
    }
    std::cout << "\n";
    breakdown.print(std::cout);

    // The ten busiest functions.
    std::vector<std::pair<std::uint64_t, FunctionId>> busiest;
    for (const auto &fn : tr.functions())
        busiest.emplace_back(fn.totalInvocations(), fn.id);
    std::sort(busiest.rbegin(), busiest.rend());
    TextTable top("Busiest functions");
    top.setHeader({"function", "invocations", "dominant period (min)",
                   "harmonics"});
    for (std::size_t i = 0; i < 10 && i < busiest.size(); ++i) {
        const auto &ch = character.functions[busiest[i].second];
        top.addRow({
            tr.function(busiest[i].second).name,
            std::to_string(busiest[i].first),
            ch.dominant_period > 0.0
                ? TextTable::num(ch.dominant_period, 1)
                : "-",
            std::to_string(ch.harmonics),
        });
    }
    std::cout << "\n";
    top.print(std::cout);
    return 0;
}
