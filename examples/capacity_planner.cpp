/**
 * @file
 * Capacity planner: the "new research avenue" the paper closes with
 * -- given a fixed capital budget, which mix of high-end and low-end
 * servers serves a workload best under IceBreaker? Sweeps the
 * budget-constant compositions and reports keep-alive cost, service
 * time and a combined score, ending with a recommendation. The paper
 * suggests matching the heterogeneity ratio to the cost ratio as a
 * first-order estimate; this tool lets you check that for your
 * workload.
 */

#include <iostream>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/cluster_config.hh"

int
main()
{
    using namespace iceb;

    trace::SyntheticConfig config;
    config.num_functions = 150;
    config.num_intervals = 360;
    config.min_memory_mb = 256;
    const harness::Workload workload = harness::makeWorkload(config);

    std::cout << "planning for " << workload.trace.numFunctions()
              << " functions / " << workload.trace.totalInvocations()
              << " invocations, constant capital budget\n\n";

    TextTable table("IceBreaker across budget-constant compositions");
    table.setHeader({"config", "keep-alive $", "mean svc (ms)",
                     "warm", "score"});

    struct Row
    {
        std::string name;
        double score = 0.0;
    };
    Row best{"", -1.0};
    // First pass to normalise the score components.
    std::vector<harness::SchemeResult> runs;
    const std::vector<sim::ClusterConfig> sweep =
        sim::budgetConstantSweep();
    double worst_cost = 0.0;
    double worst_svc = 0.0;
    for (const auto &cluster : sweep) {
        runs.push_back(harness::runScheme(harness::Scheme::IceBreaker,
                                          workload, cluster));
        worst_cost = std::max(worst_cost,
                              runs.back().metrics.totalKeepAliveCost());
        worst_svc = std::max(worst_svc,
                             runs.back().metrics.meanServiceMs());
    }
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &m = runs[i].metrics;
        // Equal-weight score: lower cost and service are better.
        const double score =
            (1.0 - m.totalKeepAliveCost() / worst_cost) +
            (1.0 - m.meanServiceMs() / worst_svc);
        table.addRow({
            sweep[i].name,
            TextTable::num(m.totalKeepAliveCost(), 3),
            TextTable::num(m.meanServiceMs(), 0),
            TextTable::pct(m.warmStartFraction()),
            TextTable::num(score, 3),
        });
        if (score > best.score)
            best = Row{sweep[i].name, score};
    }
    table.print(std::cout);

    std::cout << "\nrecommended composition for this workload: "
              << best.name
              << "\n(paper's first-order rule: keep the heterogeneity "
                 "ratio near the cost ratio)\n";
    return 0;
}
