/**
 * @file
 * Quickstart: generate a small Azure-like workload, run all five
 * schemes on the paper's default heterogeneous cluster, and print
 * keep-alive cost and service time relative to the OpenWhisk
 * baseline. This is the 60-second tour of the public API.
 */

#include <iostream>

#include "common/table.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/cluster_config.hh"

int
main()
{
    using namespace iceb;

    // 1. A workload: synthetic Azure-like trace + matched profiles.
    trace::SyntheticConfig trace_config;
    trace_config.num_functions = 120;
    trace_config.num_intervals = 720; // 12 hours of 1-minute slots
    harness::Workload workload = harness::makeWorkload(trace_config);

    std::cout << "workload: " << workload.trace.numFunctions()
              << " functions, " << workload.trace.totalInvocations()
              << " invocations over " << workload.trace.numIntervals()
              << " minutes\n\n";

    // 2. The paper's default cluster: 10 high-end + 18 low-end.
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // 3. Run every scheme on the identical workload.
    const std::vector<harness::SchemeResult> results =
        harness::runAllSchemes(workload, cluster);
    const sim::SimulationMetrics &baseline = results.front().metrics;

    // 4. Report, normalised to OpenWhisk as in the paper.
    TextTable table("All schemes vs OpenWhisk baseline "
                    "(higher improvement = better)");
    table.setHeader({"scheme", "keep-alive $", "impr.", "mean svc (s)",
                     "impr.", "warm starts"});
    for (const auto &result : results) {
        const auto &m = result.metrics;
        table.addRow({
            harness::schemeName(result.scheme),
            TextTable::num(m.totalKeepAliveCost(), 4),
            TextTable::pct(harness::improvementOver(
                baseline.totalKeepAliveCost(),
                m.totalKeepAliveCost())),
            TextTable::num(m.meanServiceMs() / 1000.0, 3),
            TextTable::pct(harness::improvementOver(
                baseline.meanServiceMs(), m.meanServiceMs())),
            TextTable::pct(m.warmStartFraction()),
        });
    }
    table.print(std::cout);

    std::cout << "\nIceBreaker should show the largest keep-alive "
                 "improvement while staying\ncompetitive on service "
                 "time; its margin grows with memory pressure (see\n"
                 "bench/bench_fig6 for the paper-scale run).\n";
    return 0;
}
