#!/usr/bin/env python3
"""Golden-file check for a bench binary's JSON output schema.

Runs ``<bench> <args> --json <tmp>`` and compares the sorted set of
dot-notation key paths in the produced JSON against the committed
golden file. Values are deliberately ignored -- timings are
machine-dependent -- but a key that appears, disappears or moves is a
schema change that downstream consumers (the --baseline gates, CI
dashboards) must hear about, so it must be made consciously by
re-running with --update.

Usage:
    check_bench_schema.py PATH_TO_BENCH [--golden PATH] [--args "..."]
                          [--json-flag FLAG] [--update]

Defaults preserve the original bench_sim invocation: golden file
tests/golden/bench_sim_schema.txt, args "--shards 2 --smoke", JSON
output requested via --json. Binaries that spell the flag differently
(live_serve writes its stats snapshot via --stats-json) pass
--json-flag.
"""

import argparse
import json
import pathlib
import shlex
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_GOLDEN = REPO / "tests" / "golden" / "bench_sim_schema.txt"
DEFAULT_ARGS = "--shards 2 --smoke"


def key_paths(value, prefix=""):
    """Sorted dot-notation paths of every key in a JSON document."""
    paths = []
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.append(path)
            paths.extend(key_paths(child, path))
    elif isinstance(value, list):
        # Element schema only; indices are not part of the shape.
        for child in value:
            paths.extend(key_paths(child, prefix + "[]"))
    return sorted(set(paths))


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("bench", help="path to the bench binary")
    parser.add_argument("--golden", type=pathlib.Path,
                        default=DEFAULT_GOLDEN,
                        help="golden key-path file to compare against")
    parser.add_argument("--args", default=DEFAULT_ARGS,
                        help="bench arguments (one shell-quoted string)")
    parser.add_argument("--json-flag", default="--json",
                        help="flag the binary takes its JSON output "
                             "path through (default --json)")
    parser.add_argument("--update", action="store_true",
                        help="re-bless the golden file")
    opts = parser.parse_args(argv[1:])

    with tempfile.TemporaryDirectory() as tmp:
        out_path = pathlib.Path(tmp) / "bench.json"
        cmd = ([opts.bench] + shlex.split(opts.args)
               + [opts.json_flag, str(out_path)])
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            print(result.stdout, file=sys.stderr)
            print(result.stderr, file=sys.stderr)
            print(f"FAIL: {' '.join(cmd)} exited {result.returncode}",
                  file=sys.stderr)
            return 1
        document = json.loads(out_path.read_text())

    actual = key_paths(document)
    if opts.update:
        opts.golden.parent.mkdir(parents=True, exist_ok=True)
        opts.golden.write_text("\n".join(actual) + "\n")
        print(f"updated {opts.golden} ({len(actual)} key paths)")
        return 0

    if not opts.golden.exists():
        print(f"FAIL: golden file {opts.golden} missing; "
              "run with --update", file=sys.stderr)
        return 1
    expected = opts.golden.read_text().split()
    if actual != expected:
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        for path in missing:
            print(f"FAIL: key path disappeared: {path}", file=sys.stderr)
        for path in extra:
            print(f"FAIL: new key path not in golden: {path}",
                  file=sys.stderr)
        print(f"(update consciously with: {argv[0]} {opts.bench} "
              f"--golden {opts.golden} --args {opts.args!r} --update)",
              file=sys.stderr)
        return 1
    print(f"OK: {len(actual)} key paths match {opts.golden.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
