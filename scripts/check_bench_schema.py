#!/usr/bin/env python3
"""Golden-file check for bench_sim's JSON output schema.

Runs ``bench_sim --shards 2 --smoke --json <tmp>`` and compares the
sorted set of dot-notation key paths in the produced JSON against the
committed golden file (tests/golden/bench_sim_schema.txt). Values are
deliberately ignored -- timings are machine-dependent -- but a key
that appears, disappears or moves is a schema change that downstream
consumers (the --baseline gate, CI dashboards) must hear about, so it
must be made consciously by re-running with --update.

Usage:
    check_bench_schema.py PATH_TO_BENCH_SIM [--update]
"""

import json
import pathlib
import subprocess
import sys
import tempfile

GOLDEN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "tests"
    / "golden"
    / "bench_sim_schema.txt"
)


def key_paths(value, prefix=""):
    """Sorted dot-notation paths of every key in a JSON document."""
    paths = []
    if isinstance(value, dict):
        for key, child in value.items():
            path = f"{prefix}.{key}" if prefix else key
            paths.append(path)
            paths.extend(key_paths(child, path))
    elif isinstance(value, list):
        # Element schema only; indices are not part of the shape.
        for child in value:
            paths.extend(key_paths(child, prefix + "[]"))
    return sorted(set(paths))


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    bench = argv[1]
    update = "--update" in argv[2:]

    with tempfile.TemporaryDirectory() as tmp:
        out_path = pathlib.Path(tmp) / "bench_sim.json"
        cmd = [bench, "--shards", "2", "--smoke", "--json", str(out_path)]
        result = subprocess.run(cmd, capture_output=True, text=True)
        if result.returncode != 0:
            print(result.stdout, file=sys.stderr)
            print(result.stderr, file=sys.stderr)
            print(f"FAIL: {' '.join(cmd)} exited {result.returncode}",
                  file=sys.stderr)
            return 1
        document = json.loads(out_path.read_text())

    actual = key_paths(document)
    if update:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text("\n".join(actual) + "\n")
        print(f"updated {GOLDEN} ({len(actual)} key paths)")
        return 0

    if not GOLDEN.exists():
        print(f"FAIL: golden file {GOLDEN} missing; run with --update",
              file=sys.stderr)
        return 1
    expected = GOLDEN.read_text().split()
    if actual != expected:
        missing = sorted(set(expected) - set(actual))
        extra = sorted(set(actual) - set(expected))
        for path in missing:
            print(f"FAIL: key path disappeared: {path}", file=sys.stderr)
        for path in extra:
            print(f"FAIL: new key path not in golden: {path}",
                  file=sys.stderr)
        print(f"(update consciously with: {argv[0]} {bench} --update)",
              file=sys.stderr)
        return 1
    print(f"OK: {len(actual)} key paths match {GOLDEN.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
