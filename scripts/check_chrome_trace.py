#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out.

Checks, with only the stdlib:
  - the file parses as JSON with the expected document shell,
  - every event carries the required trace_event keys for its phase,
  - duration events have non-negative dur,
  - every pid is named via a process_name metadata event,
  - there is at least one duration or instant event (a trace of pure
    metadata means the instrumentation recorded nothing).

Usage: check_chrome_trace.py TRACE.json
"""

import json
import sys

REQUIRED = {
    "M": {"ph", "pid", "name", "args"},
    "X": {"ph", "pid", "tid", "ts", "dur", "name"},
    "i": {"ph", "pid", "tid", "ts", "name"},
    "C": {"ph", "pid", "ts", "name", "args"},
}


def fail(msg):
    print(f"check_chrome_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_chrome_trace.py TRACE.json")
    try:
        with open(sys.argv[1], "rb") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot load {sys.argv[1]}: {exc}")

    if doc.get("displayTimeUnit") != "ms":
        fail("missing displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_pids = set()
    counts = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        required = REQUIRED.get(ph)
        if required is None:
            fail(f"event {i}: unexpected phase {ph!r}")
        missing = required - ev.keys()
        if missing:
            fail(f"event {i} (ph={ph}): missing keys {sorted(missing)}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i}: negative dur {ev['dur']}")
        if ph in ("X", "i", "C") and ev["ts"] < 0:
            fail(f"event {i}: negative ts {ev['ts']}")
        if ph == "M" and ev["name"] == "process_name":
            named_pids.add(ev["pid"])

    unnamed = {e["pid"] for e in events} - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")
    if counts.get("X", 0) + counts.get("i", 0) == 0:
        fail("no duration or instant events recorded")

    summary = ", ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    print(f"check_chrome_trace: OK ({len(events)} events: {summary})")


if __name__ == "__main__":
    main()
