#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by --trace-out.

Checks, with only the stdlib:
  - the file parses as JSON with the expected document shell,
  - every event carries the required trace_event keys for its phase,
  - duration events have non-negative dur,
  - every pid is named via a process_name metadata event,
  - there is at least one duration or instant event (a trace of pure
    metadata means the instrumentation recorded nothing),
  - barrier-phase spans (cat "barrier") nest correctly: serial-phase
    spans sit at barrier timestamps, never strictly inside a
    parallel-cells span, and every parallel-cells span is paired with
    exactly one serial-barrier span on the same track.

With --min-cells N, additionally require a sharded run's per-cell
track layout: at least one process with >= N "cellK" thread_name
tracks, every declared cell track carrying at least one event.

Usage: check_chrome_trace.py TRACE.json [--min-cells N]
"""

import argparse
import json
import re
import sys

REQUIRED = {
    "M": {"ph", "pid", "name", "args"},
    "X": {"ph", "pid", "tid", "ts", "dur", "name"},
    "i": {"ph", "pid", "tid", "ts", "name"},
    "C": {"ph", "pid", "ts", "name", "args"},
}

CELL_TRACK = re.compile(r"^cell(\d+)$")


def fail(msg):
    print(f"check_chrome_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_barrier_nesting(events):
    """Serial barrier phases must never overlap a parallel phase.

    The sharded coordinator records, per interval, zero-length
    serial-phase spans (serial-barrier, probe-sample) at the barrier
    timestamp followed by one parallel-cells span covering the
    interval. Nesting invariant: a serial span's ts may touch a
    parallel span's boundary but never its strict interior, and
    serial-barrier / parallel-cells spans pair 1:1 per track.
    """
    parallel = {}  # (pid, tid) -> [(ts, dur)]
    serial = {}    # (pid, tid) -> [(ts, name)]
    barriers = {}  # (pid, tid) -> count of serial-barrier spans
    for ev in events:
        if ev.get("ph") != "X" or ev.get("cat") != "barrier":
            continue
        key = (ev["pid"], ev["tid"])
        if ev["name"] == "parallel-cells":
            parallel.setdefault(key, []).append((ev["ts"], ev["dur"]))
        else:
            serial.setdefault(key, []).append((ev["ts"], ev["name"]))
            if ev["name"] == "serial-barrier":
                barriers[key] = barriers.get(key, 0) + 1

    for key, spans in parallel.items():
        spans.sort()
        for (t0, d0), (t1, _) in zip(spans, spans[1:]):
            if t1 < t0 + d0:
                fail(f"track {key}: parallel-cells spans overlap "
                     f"(ts {t0} dur {d0} vs ts {t1})")
        if barriers.get(key, 0) != len(spans):
            fail(f"track {key}: {len(spans)} parallel-cells spans but "
                 f"{barriers.get(key, 0)} serial-barrier spans")
        for ts, name in serial.get(key, []):
            for t, d in spans:
                if t < ts < t + d:
                    fail(f"track {key}: serial span {name!r} at ts "
                         f"{ts} inside parallel-cells [{t}, {t + d}]")
    return sum(len(s) for s in parallel.values())


def check_cell_tracks(events, min_cells):
    """Per-cell track layout of a sharded run (--min-cells)."""
    declared = {}  # pid -> {tid of a "cellK" thread_name track}
    populated = {}  # pid -> {tid with at least one non-metadata event}
    for ev in events:
        if (ev.get("ph") == "M" and ev.get("name") == "thread_name"
                and CELL_TRACK.match(ev["args"].get("name", ""))):
            declared.setdefault(ev["pid"], set()).add(ev["tid"])
        elif ev.get("ph") in ("X", "i") and "tid" in ev:
            populated.setdefault(ev["pid"], set()).add(ev["tid"])

    best = max((len(tids) for tids in declared.values()), default=0)
    if best < min_cells:
        fail(f"no process declares >= {min_cells} cell tracks "
             f"(best: {best})")
    for pid, tids in declared.items():
        empty = tids - populated.get(pid, set())
        if empty:
            fail(f"pid {pid}: cell tracks without events: "
                 f"{sorted(empty)}")
    return best


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", help="trace_event JSON file")
    parser.add_argument("--min-cells", type=int, default=0,
                        help="require a sharded run with at least N "
                             "per-cell tid tracks, each non-empty")
    opts = parser.parse_args()

    try:
        with open(opts.trace, "rb") as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot load {opts.trace}: {exc}")

    if doc.get("displayTimeUnit") != "ms":
        fail("missing displayTimeUnit")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents missing or empty")

    named_pids = set()
    counts = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        required = REQUIRED.get(ph)
        if required is None:
            fail(f"event {i}: unexpected phase {ph!r}")
        missing = required - ev.keys()
        if missing:
            fail(f"event {i} (ph={ph}): missing keys {sorted(missing)}")
        counts[ph] = counts.get(ph, 0) + 1
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i}: negative dur {ev['dur']}")
        if ph in ("X", "i", "C") and ev["ts"] < 0:
            fail(f"event {i}: negative ts {ev['ts']}")
        if ph == "M" and ev["name"] == "process_name":
            named_pids.add(ev["pid"])

    unnamed = {e["pid"] for e in events} - named_pids
    if unnamed:
        fail(f"pids without process_name metadata: {sorted(unnamed)}")
    if counts.get("X", 0) + counts.get("i", 0) == 0:
        fail("no duration or instant events recorded")

    phases = check_barrier_nesting(events)
    cells = 0
    if opts.min_cells > 0:
        cells = check_cell_tracks(events, opts.min_cells)
        if phases == 0:
            fail("--min-cells given but no parallel-cells barrier "
                 "spans recorded")

    summary = ", ".join(f"{ph}={n}" for ph, n in sorted(counts.items()))
    extra = ""
    if phases:
        extra += f", {phases} barrier phases"
    if cells:
        extra += f", {cells} cell tracks"
    print(f"check_chrome_trace: OK ({len(events)} events: "
          f"{summary}{extra})")


if __name__ == "__main__":
    main()
