/**
 * @file
 * Determinism lockdown for the sharded discrete-event engine.
 *
 * The contract under test (sim/sharded_simulator.hh): a sharded run's
 * results are a pure function of the workload, the cluster and the
 * logical cell partition — NEVER of the worker count. The sweep here
 * drives every scheme across shards {1, 2, 4} (and the runner's
 * outer thread pool on top) and demands bitwise-equal metrics and
 * byte-equal probe CSV against the 1-worker reference; satellite
 * tests pin the cross-cell boundary semantics (tier spillover,
 * eviction ordering, keep-alive expiry exactly on the barrier) and
 * the named baseline-gate messages bench_sim prints on failure.
 */

#include <gtest/gtest.h>

#include <array>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/icebreaker.hh"
#include "harness/baseline_gate.hh"
#include "harness/observe.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "policies/faascache_policy.hh"
#include "policies/openwhisk_policy.hh"
#include "serve/decision_engine.hh"
#include "serve/drivers.hh"
#include "sim/sharded_simulator.hh"
#include "sim/simulator.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

/**
 * Hand-built workload with mid-run churn: a third of the functions
 * are present from the start, a third ARRIVE mid-run (all-zero
 * concurrency until their debut interval), a third RETIRE mid-run
 * (all-zero after their last interval). Deterministic in shape — the
 * per-invocation jitter comes from the simulator's seeded RNG.
 */
struct TestWorkload
{
    trace::Trace tr{1, kMsPerMinute};
    std::vector<workload::FunctionProfile> profiles;
};

TestWorkload
churnWorkload(std::size_t num_fns = 24, std::size_t num_intervals = 20)
{
    TestWorkload w;
    w.tr = trace::Trace(num_intervals, kMsPerMinute);
    for (std::size_t fn = 0; fn < num_fns; ++fn) {
        trace::FunctionSeries series;
        series.name = "fn" + std::to_string(fn);
        series.memory_mb = 128 + 128 * static_cast<MemoryMb>(fn % 3);
        series.avg_exec_ms = 500 + 250 * static_cast<TimeMs>(fn % 4);
        series.concurrency.assign(num_intervals, 0);
        const std::size_t debut =
            fn % 3 == 1 ? num_intervals / 2 : 0; // mid-run arrival
        const std::size_t last = fn % 3 == 2
            ? num_intervals / 3      // mid-run retirement
            : num_intervals - 1;
        for (std::size_t iv = debut; iv <= last; ++iv)
            series.concurrency[iv] =
                static_cast<std::uint32_t>(1 + (fn + iv) % 4);
        w.tr.addFunction(series);

        workload::FunctionProfile profile;
        profile.name = series.name;
        profile.memory_mb = series.memory_mb;
        profile.cold_start_ms = {800 + 100 * static_cast<TimeMs>(fn % 5),
                                 2500};
        profile.exec_ms = {series.avg_exec_ms, 2 * series.avg_exec_ms};
        w.profiles.push_back(profile);
    }
    return w;
}

ClusterConfig
testCluster()
{
    ClusterConfig config = defaultHeterogeneousCluster();
    config.spec(Tier::HighEnd).server_count = 6;
    config.spec(Tier::HighEnd).memory_per_server_mb = 4096;
    config.spec(Tier::LowEnd).server_count = 9;
    config.spec(Tier::LowEnd).memory_per_server_mb = 3072;
    return config;
}

/** Exact (bitwise for floats) equality of two runs' metrics. */
void
expectMetricsIdentical(const SimulationMetrics &a,
                       const SimulationMetrics &b)
{
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_no_container, b.cold_no_container);
    EXPECT_EQ(a.cold_all_busy, b.cold_all_busy);
    EXPECT_EQ(a.cold_setup_attach, b.cold_setup_attach);
    EXPECT_EQ(a.sum_service_ms, b.sum_service_ms);
    EXPECT_EQ(a.sum_wait_ms, b.sum_wait_ms);
    EXPECT_EQ(a.sum_cold_ms, b.sum_cold_ms);
    EXPECT_EQ(a.sum_exec_ms, b.sum_exec_ms);
    EXPECT_EQ(a.sum_overhead_ms, b.sum_overhead_ms);
    EXPECT_EQ(a.service_times_ms, b.service_times_ms);
    EXPECT_EQ(a.service_times_high_ms, b.service_times_high_ms);
    EXPECT_EQ(a.service_times_low_ms, b.service_times_low_ms);
    ASSERT_EQ(a.per_function.size(), b.per_function.size());
    for (std::size_t fn = 0; fn < a.per_function.size(); ++fn) {
        EXPECT_EQ(a.per_function[fn].invocations,
                  b.per_function[fn].invocations);
        EXPECT_EQ(a.per_function[fn].cold_starts,
                  b.per_function[fn].cold_starts);
        EXPECT_EQ(a.per_function[fn].sum_service_ms,
                  b.per_function[fn].sum_service_ms);
        EXPECT_EQ(a.per_function[fn].keep_alive_cost,
                  b.per_function[fn].keep_alive_cost);
    }
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        EXPECT_EQ(a.keep_alive[t].successful_cost,
                  b.keep_alive[t].successful_cost);
        EXPECT_EQ(a.keep_alive[t].wasteful_cost,
                  b.keep_alive[t].wasteful_cost);
        EXPECT_EQ(a.keep_alive[t].wasted_mb_ms,
                  b.keep_alive[t].wasted_mb_ms);
    }
}

SimulationMetrics
runShardedScheme(const TestWorkload &w, const ClusterConfig &cluster,
                 const std::string &scheme, std::size_t shards,
                 std::uint64_t seed)
{
    const std::unique_ptr<Policy> policy =
        harness::makePolicyByName(scheme);
    SimulatorOptions options;
    options.seed = seed;
    options.shards = shards;
    return runSimulation(w.tr, w.profiles, cluster, *policy, options);
}

// ------------------------------------------------------- ShardPlan

TEST(ShardPlanTest, ClampsToSmallestPopulatedTier)
{
    const TestWorkload w = churnWorkload();
    // Default geometry: HighEnd 10 servers, LowEnd 18. Every cell
    // must own a server of EVERY tier, so 10 bounds the auto count.
    const ShardPlan plan =
        ShardPlan::build(w.tr.numFunctions(), defaultHeterogeneousCluster());
    EXPECT_EQ(plan.num_cells, 10u);

    // An explicit request below the bound is honoured as-is.
    const ShardPlan small =
        ShardPlan::build(w.tr.numFunctions(), defaultHeterogeneousCluster(), 4);
    EXPECT_EQ(small.num_cells, 4u);

    // A request above it is clamped back down.
    const ShardPlan big =
        ShardPlan::build(w.tr.numFunctions(), defaultHeterogeneousCluster(), 64);
    EXPECT_EQ(big.num_cells, 10u);
}

TEST(ShardPlanTest, ClampsToFunctionCount)
{
    const TestWorkload w = churnWorkload(3);
    const ShardPlan plan =
        ShardPlan::build(w.tr.numFunctions(), defaultHeterogeneousCluster());
    EXPECT_EQ(plan.num_cells, 3u);
}

TEST(ShardPlanTest, CellConfigSplitsServersAcrossCells)
{
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster(); // 6 high, 9 low
    const ShardPlan plan = ShardPlan::build(w.tr.numFunctions(), cluster, 4);
    ASSERT_EQ(plan.num_cells, 4u);

    std::size_t high_total = 0;
    std::size_t low_total = 0;
    for (std::size_t cell = 0; cell < plan.num_cells; ++cell) {
        const ClusterConfig cc = plan.cellConfig(cluster, cell);
        // Every cell owns at least one server of every tier, with
        // per-server memory untouched.
        EXPECT_GE(cc.spec(Tier::HighEnd).server_count, 1u);
        EXPECT_GE(cc.spec(Tier::LowEnd).server_count, 1u);
        EXPECT_EQ(cc.spec(Tier::HighEnd).memory_per_server_mb,
                  cluster.spec(Tier::HighEnd).memory_per_server_mb);
        EXPECT_EQ(cc.spec(Tier::LowEnd).memory_per_server_mb,
                  cluster.spec(Tier::LowEnd).memory_per_server_mb);
        // The remainder lands on the first cells, so counts differ by
        // at most one.
        EXPECT_LE(cc.spec(Tier::HighEnd).server_count, 6u / 4 + 1);
        EXPECT_LE(cc.spec(Tier::LowEnd).server_count, 9u / 4 + 1);
        high_total += cc.spec(Tier::HighEnd).server_count;
        low_total += cc.spec(Tier::LowEnd).server_count;
    }
    // No server is lost or duplicated by the split.
    EXPECT_EQ(high_total, 6u);
    EXPECT_EQ(low_total, 9u);
}

TEST(ShardPlanTest, CellOfCoversEveryCell)
{
    const TestWorkload w = churnWorkload(24);
    const ShardPlan plan =
        ShardPlan::build(w.tr.numFunctions(), defaultHeterogeneousCluster(), 5);
    std::vector<std::size_t> population(plan.num_cells, 0);
    for (FunctionId fn = 0; fn < 24; ++fn) {
        ASSERT_LT(plan.cellOf(fn), plan.num_cells);
        ++population[plan.cellOf(fn)];
    }
    for (std::size_t cell = 0; cell < plan.num_cells; ++cell)
        EXPECT_GT(population[cell], 0u);
}

// ------------------------------------------- determinism sweep

TEST(ShardDeterminismTest, DigestInvariantAcrossWorkerCounts)
{
    // The property sweep: every scheme x seeds x shards {2, 4} must
    // reproduce the 1-worker reference bit for bit, on a workload
    // with mid-run function arrival and retirement.
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster();
    const std::vector<std::string> schemes = {
        "openwhisk", "wild", "faascache", "icebreaker", "oracle"};
    const std::vector<std::uint64_t> seeds = {0x51AB'1CEBull,
                                              0xD15C'0B0Eull};
    for (const std::string &scheme : schemes) {
        for (const std::uint64_t seed : seeds) {
            const SimulationMetrics reference =
                runShardedScheme(w, cluster, scheme, 1, seed);
            for (const std::size_t shards : {2u, 4u}) {
                SCOPED_TRACE(scheme + " shards=" +
                             std::to_string(shards) + " seed=" +
                             std::to_string(seed));
                expectMetricsIdentical(
                    reference,
                    runShardedScheme(w, cluster, scheme, shards, seed));
            }
        }
    }
}

TEST(ShardDeterminismTest, SerialFallbackForIncompatiblePolicies)
{
    // FaasCache does not declare shardCompatible, so its cells run
    // serially -- parallel() stays false at any worker count and the
    // results still match across worker counts (previous test). A
    // compatible scheme on the same geometry does go parallel.
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster();

    policies::FaasCachePolicy faascache;
    ASSERT_FALSE(faascache.shardCompatible());
    SimulatorOptions options;
    options.shards = 4;
    const ShardedSimulator serial(w.tr, w.profiles, cluster, faascache,
                                  options);
    EXPECT_FALSE(serial.parallel());

    core::IceBreakerPolicy icebreaker;
    ASSERT_TRUE(icebreaker.shardCompatible());
    const ShardedSimulator threaded(w.tr, w.profiles, cluster,
                                    icebreaker, options);
    EXPECT_TRUE(threaded.parallel());

    // One worker never pays for a pool, compatible or not.
    options.shards = 1;
    const ShardedSimulator single(w.tr, w.profiles, cluster, icebreaker,
                                  options);
    EXPECT_FALSE(single.parallel());
}

TEST(ShardDeterminismTest, IncrementalApiMatchesRun)
{
    // start / advanceInterval / finish must replay exactly what run()
    // does -- the serving drivers depend on it.
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster();
    SimulatorOptions options;
    options.shards = 2;

    core::IceBreakerPolicy batch_policy;
    ShardedSimulator batch(w.tr, w.profiles, cluster, batch_policy,
                           options);
    const SimulationMetrics whole = batch.run();

    core::IceBreakerPolicy step_policy;
    ShardedSimulator stepped(w.tr, w.profiles, cluster, step_policy,
                             options);
    stepped.start();
    ASSERT_TRUE(stepped.nextBarrierTime().has_value());
    EXPECT_EQ(*stepped.nextBarrierTime(), 0u);

    TimeMs last_now = 0;
    while (stepped.advanceInterval()) {
        EXPECT_GE(stepped.now(), last_now);
        last_now = stepped.now();
    }
    EXPECT_FALSE(stepped.nextBarrierTime().has_value());
    EXPECT_EQ(stepped.intervalsStarted(), w.tr.numIntervals());
    expectMetricsIdentical(whole, stepped.finish());
}

TEST(ShardDeterminismTest, ProbeCsvByteIdenticalAcrossWorkerCounts)
{
    // The streaming probe CSV -- sampled serially at each barrier --
    // must be byte-identical for every worker count.
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster();

    const auto replay = [&](std::size_t shards, std::string &csv) {
        serve::DecisionEngine engine(
            std::make_unique<core::IceBreakerPolicy>());
        std::ostringstream out;
        serve::ReplayOptions options;
        options.probe_csv = &out;
        options.sim.shards = shards;
        serve::ReplayDriver driver(w.tr, w.profiles, cluster, engine,
                                   options);
        const SimulationMetrics metrics = driver.run();
        csv = out.str();
        return metrics;
    };

    std::string csv1;
    std::string csv4;
    const SimulationMetrics m1 = replay(1, csv1);
    const SimulationMetrics m4 = replay(4, csv4);
    expectMetricsIdentical(m1, m4);
    EXPECT_FALSE(csv1.empty());
    EXPECT_EQ(csv1, csv4);
}

TEST(ShardDeterminismTest, ObservationFilesByteIdenticalAcrossWorkers)
{
    // The full observability surface of a sharded run — per-cell
    // Chrome trace tracks, the latency-histogram CSV, and manifest
    // lines with folded histogram digests — is a pure function of the
    // cell partition: byte-identical for every shards x threads
    // combination.
    const harness::Workload workload = [] {
        trace::SyntheticConfig config;
        config.num_functions = 18;
        config.num_intervals = 30;
        return harness::makeWorkload(config);
    }();
    const std::string dir = testing::TempDir();

    const auto slurp = [](const std::string &path) {
        std::ifstream in(path, std::ios::binary);
        return std::string((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    };
    const auto runGrid = [&](std::size_t threads, std::size_t shards,
                             const std::string &tag) {
        harness::ObservationOptions obs;
        obs.trace_path = dir + "/shard_trace_" + tag + ".json";
        obs.hist_path = dir + "/shard_hist_" + tag + ".csv";
        obs.manifest_path = dir + "/shard_manifest_" + tag + ".jsonl";
        std::vector<harness::RunSpec> grid = harness::buildGrid(
            {"openwhisk", "icebreaker"}, workload,
            {{"base", testCluster()}});
        for (harness::RunSpec &spec : grid)
            spec.shards = shards;
        harness::ExperimentRunner runner(threads);
        runner.setObservation(obs);
        runner.run(grid);
        return std::array<std::string, 3>{slurp(obs.trace_path),
                                          slurp(obs.hist_path),
                                          slurp(obs.manifest_path)};
    };

    const std::array<std::string, 3> reference = runGrid(1, 1, "ref");
    // The reference actually exercises every pillar: per-cell tracks
    // and barrier spans in the trace, latency rows in the CSV, and
    // histogram digests folded into the manifest.
    EXPECT_NE(reference[0].find("\"cell0\""), std::string::npos);
    EXPECT_NE(reference[0].find("serial-barrier"), std::string::npos);
    EXPECT_NE(reference[0].find("parallel-cells"), std::string::npos);
    EXPECT_NE(reference[1].find("cold_start_ms"), std::string::npos);
    EXPECT_NE(reference[2].find("\"histograms\""), std::string::npos);
    EXPECT_NE(reference[2].find("cold_start_ms/high-end"),
              std::string::npos);

    for (const std::size_t threads : {1u, 4u}) {
        for (const std::size_t shards : {2u, 4u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
            const std::array<std::string, 3> result =
                runGrid(threads, shards,
                        std::to_string(threads) + "x" +
                            std::to_string(shards));
            EXPECT_EQ(reference[0], result[0]);
            EXPECT_EQ(reference[1], result[1]);
            EXPECT_EQ(reference[2], result[2]);
        }
    }
}

TEST(ShardDeterminismTest, SimDriverMatchesBareSimulation)
{
    // The batch driver forwards shards through SimulatorOptions: an
    // engine-wrapped sharded run equals the bare sharded run.
    const TestWorkload w = churnWorkload();
    const ClusterConfig cluster = testCluster();
    SimulatorOptions options;
    options.shards = 2;

    core::IceBreakerPolicy bare;
    const SimulationMetrics direct =
        runSimulation(w.tr, w.profiles, cluster, bare, options);

    serve::DecisionEngine engine(
        std::make_unique<core::IceBreakerPolicy>());
    serve::SimDriver driver(w.tr, w.profiles, cluster, engine, options);
    expectMetricsIdentical(direct, driver.run());
}

TEST(ShardDeterminismTest, RunnerGridByteIdenticalAcrossThreads)
{
    // Outer thread pool x inner worker threads: RunSpec::shards rides
    // the runner's determinism contract, so any (threads, shards)
    // combination reproduces the serial single-worker grid.
    const harness::Workload workload = [] {
        trace::SyntheticConfig config;
        config.num_functions = 18;
        config.num_intervals = 30;
        return harness::makeWorkload(config);
    }();

    const auto runGrid = [&](std::size_t threads, std::size_t shards) {
        std::vector<harness::RunSpec> grid = harness::buildGrid(
            {"openwhisk", "icebreaker"}, workload,
            {{"base", testCluster()}});
        for (harness::RunSpec &spec : grid)
            spec.shards = shards;
        return harness::ExperimentRunner(threads).run(grid);
    };

    const std::vector<harness::RunResult> reference = runGrid(1, 1);
    for (const std::size_t threads : {1u, 4u}) {
        for (const std::size_t shards : {2u, 4u}) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " shards=" + std::to_string(shards));
            const std::vector<harness::RunResult> result =
                runGrid(threads, shards);
            ASSERT_EQ(result.size(), reference.size());
            for (std::size_t i = 0; i < result.size(); ++i)
                expectMetricsIdentical(reference[i].metrics,
                                       result[i].metrics);
        }
    }
}

// ------------------------------------------- cross-cell boundaries

TEST(ShardBoundaryTest, ColdPlacementSpillsToOtherTierWhenFull)
{
    // One cell whose high-end slice fits a single container: a burst
    // of two concurrent invocations must spill the second cold start
    // to the low-end tier, exactly as the classic engine places it.
    TestWorkload w;
    w.tr = trace::Trace(3, kMsPerMinute);
    trace::FunctionSeries series;
    series.name = "f0";
    series.memory_mb = 256;
    series.avg_exec_ms = 70'000;
    series.concurrency = {2, 0, 0};
    w.tr.addFunction(series);
    workload::FunctionProfile profile;
    profile.name = "f0";
    profile.memory_mb = 256;
    profile.cold_start_ms = {1000, 1000};
    // Executions outlast the interval, so the two arrivals overlap no
    // matter where the jitter lands them: the second cannot reuse the
    // first's container and must place cold.
    profile.exec_ms = {70'000, 70'000};
    w.profiles.push_back(profile);

    ClusterConfig cluster = defaultHeterogeneousCluster();
    cluster.spec(Tier::HighEnd).server_count = 1;
    cluster.spec(Tier::HighEnd).memory_per_server_mb = 256;
    cluster.spec(Tier::LowEnd).server_count = 1;
    cluster.spec(Tier::LowEnd).memory_per_server_mb = 4096;

    policies::OpenWhiskPolicy classic_policy;
    const SimulationMetrics classic =
        runSimulation(w.tr, w.profiles, cluster, classic_policy);

    policies::OpenWhiskPolicy sharded_policy;
    SimulatorOptions options;
    options.shards = 2;
    const SimulationMetrics sharded = runSimulation(
        w.tr, w.profiles, cluster, sharded_policy, options);

    // One service on each tier: the spillover happened, and the
    // single-cell sharded engine reproduces the classic placement.
    EXPECT_EQ(sharded.service_times_high_ms.size(), 1u);
    EXPECT_EQ(sharded.service_times_low_ms.size(), 1u);
    expectMetricsIdentical(classic, sharded);
}

/**
 * Deterministic eviction order: priority == function id, so the
 * lowest id is always reclaimed first; records victims for the test.
 */
class EvictLowestIdPolicy : public policies::OpenWhiskPolicy
{
  public:
    double evictionPriority(FunctionId fn, Tier, TimeMs,
                            TimeMs) override
    {
        return static_cast<double>(fn);
    }

    void onEviction(FunctionId fn, Tier, TimeMs) override
    {
        victims.push_back(fn);
    }

    std::vector<FunctionId> victims;
};

TEST(ShardBoundaryTest, EvictionOrderFollowsPolicyPriorityPerCell)
{
    // Three idle containers (fns 0..2) fill the only server; a burst
    // from fn 3 must evict them in priority order 0, 1, 2.
    TestWorkload w;
    w.tr = trace::Trace(12, kMsPerMinute);
    for (std::size_t fn = 0; fn < 4; ++fn) {
        trace::FunctionSeries series;
        series.name = "f" + std::to_string(fn);
        series.memory_mb = 256;
        series.avg_exec_ms = 1000;
        series.concurrency.assign(12, 0);
        if (fn < 3)
            series.concurrency[0] = 1; // idle residents after iv 0
        else
            series.concurrency[2] = 3; // the evicting burst
        w.tr.addFunction(series);
        workload::FunctionProfile profile;
        profile.name = series.name;
        profile.memory_mb = 256;
        profile.cold_start_ms = {1000, 1000};
        // Residents finish fast and sit idle; the burst's executions
        // outlast the interval so its three arrivals need three
        // simultaneous containers regardless of jitter.
        const TimeMs exec = fn < 3 ? 1000 : 70'000;
        profile.exec_ms = {exec, exec};
        w.profiles.push_back(profile);
    }
    ClusterConfig cluster = defaultHeterogeneousCluster();
    cluster.spec(Tier::HighEnd).server_count = 1;
    cluster.spec(Tier::HighEnd).memory_per_server_mb = 3 * 256;
    cluster.spec(Tier::LowEnd).server_count = 1;
    cluster.spec(Tier::LowEnd).memory_per_server_mb = 0;

    const auto run = [&](std::size_t shards) {
        EvictLowestIdPolicy policy;
        SimulatorOptions options;
        options.shards = shards;
        (void)runSimulation(w.tr, w.profiles, cluster, policy, options);
        return policy.victims;
    };

    const std::vector<FunctionId> serial = run(1);
    ASSERT_EQ(serial.size(), 3u);
    EXPECT_EQ(serial[0], 0u);
    EXPECT_EQ(serial[1], 1u);
    EXPECT_EQ(serial[2], 2u);
    EXPECT_EQ(serial, run(4));
}

/** Grants keep-alives that expire exactly ON the next barrier. */
class BarrierKeepAlivePolicy : public policies::OpenWhiskPolicy
{
  public:
    TimeMs keepAliveAfterExecutionMs(FunctionId, Tier,
                                     TimeMs now) override
    {
        const TimeMs next_barrier =
            (now / kMsPerMinute + 1) * kMsPerMinute;
        return next_barrier - now;
    }
};

TEST(ShardBoundaryTest, KeepAliveExpiringOnBarrierIsDeterministic)
{
    // Container expiries landing exactly on the interval barrier are
    // the sharpest edge of the barrier protocol: the expiry event
    // carries the barrier's own timestamp, so it must sort against
    // the next interval's prewarms and arrivals identically in every
    // configuration. With one cell the sharded engine must also match
    // the classic engine exactly.
    const TestWorkload base = churnWorkload(1, 16);
    const ClusterConfig cluster = testCluster();

    BarrierKeepAlivePolicy classic_policy;
    const SimulationMetrics classic = runSimulation(
        base.tr, base.profiles, cluster, classic_policy);

    const auto sharded = [&](std::size_t shards) {
        BarrierKeepAlivePolicy policy;
        SimulatorOptions options;
        options.shards = shards;
        return runSimulation(base.tr, base.profiles, cluster, policy,
                             options);
    };
    const SimulationMetrics one = sharded(1);
    expectMetricsIdentical(classic, one);
    expectMetricsIdentical(one, sharded(2));
    expectMetricsIdentical(one, sharded(4));
}

// ------------------------------------------- named baseline gates

TEST(BaselineGateTest, RatioGateNamesMetricAndFloor)
{
    const harness::GateResult pass =
        harness::gateRatio("speedup ratio", 2.5, 2.4, 0.02);
    EXPECT_TRUE(pass.ok);
    EXPECT_NE(pass.message.find("[speedup ratio]"), std::string::npos);
    EXPECT_NE(pass.message.find("meets floor"), std::string::npos);

    const harness::GateResult fail =
        harness::gateRatio("speedup ratio", 2.0, 2.4, 0.02);
    EXPECT_FALSE(fail.ok);
    EXPECT_NE(fail.message.find("[speedup ratio]"), std::string::npos);
    EXPECT_NE(fail.message.find("fell below floor"), std::string::npos);
    EXPECT_NE(fail.message.find("2.00000"), std::string::npos);

    // Exactly on the floor still passes.
    EXPECT_TRUE(harness::gateRatio("r", 0.98, 1.0, 0.02).ok);
}

TEST(BaselineGateTest, DigestGateNamesMetricAndBothDigests)
{
    const harness::GateResult pass = harness::gateDigest(
        "metrics digest", "0xabc", "0xabc");
    EXPECT_TRUE(pass.ok);
    EXPECT_NE(pass.message.find("[metrics digest]"), std::string::npos);

    const harness::GateResult fail = harness::gateDigest(
        "metrics digest", "0xabc", "0xdef");
    EXPECT_FALSE(fail.ok);
    EXPECT_NE(fail.message.find("[metrics digest]"), std::string::npos);
    EXPECT_NE(fail.message.find("0xabc"), std::string::npos);
    EXPECT_NE(fail.message.find("0xdef"), std::string::npos);
}

TEST(BaselineGateTest, FlatJsonScrapers)
{
    const std::string text = R"({
  "speedup_vs_legacy": 2.625,
  "sharded": {"metrics_digest": "0x74c3670947bc06f0", "workers": 4}
})";
    const std::optional<double> number =
        harness::findJsonNumber(text, "speedup_vs_legacy");
    ASSERT_TRUE(number.has_value());
    EXPECT_DOUBLE_EQ(*number, 2.625);
    EXPECT_EQ(harness::findJsonString(text, "metrics_digest"),
              std::optional<std::string>("0x74c3670947bc06f0"));

    EXPECT_FALSE(
        harness::findJsonNumber(text, "no_such_key").has_value());
    EXPECT_FALSE(
        harness::findJsonString(text, "no_such_key").has_value());
    // Type confusion is rejected, not coerced.
    EXPECT_FALSE(
        harness::findJsonNumber(text, "metrics_digest").has_value());
    EXPECT_FALSE(
        harness::findJsonString(text, "workers").has_value());
}

} // namespace
