/**
 * @file
 * Tests for the observability layer (src/obs/ + harness wiring): the
 * trace ring buffer, Chrome trace_event export, probe CSV, manifest
 * lines, digest stability, latency histograms (bucket exactness,
 * merge algebra, tidy CSV), the no-perturbation contract (an attached
 * recorder never changes simulation results), and byte-identical
 * observation files across runner thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/rng.hh"
#include "harness/observe.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "obs/histogram.hh"
#include "obs/manifest.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"
#include "obs/trace_sink.hh"

namespace
{

using namespace iceb;

harness::Workload
smallWorkload()
{
    trace::SyntheticConfig config;
    config.num_functions = 24;
    config.num_intervals = 90;
    config.min_memory_mb = 256;
    return harness::makeWorkload(config);
}

TEST(TraceSinkTest, RecordsRetainOrderAndCounts)
{
    obs::TraceSink sink(16);
    EXPECT_EQ(sink.capacity(), 16u);
    EXPECT_EQ(sink.size(), 0u);
    sink.record(obs::TraceKind::Arrival, 100, 3, Tier::HighEnd,
                obs::ColdCause::None, 0);
    sink.record(obs::TraceKind::ColdStart, 150, 3, Tier::LowEnd,
                obs::ColdCause::AllBusy, 900);
    ASSERT_EQ(sink.size(), 2u);
    EXPECT_EQ(sink.recorded(), 2u);
    EXPECT_EQ(sink.dropped(), 0u);
    EXPECT_EQ(sink.at(0).time, 100u);
    EXPECT_EQ(sink.at(0).kind,
              static_cast<std::uint8_t>(obs::TraceKind::Arrival));
    EXPECT_EQ(sink.at(1).arg, 900u);
    EXPECT_EQ(sink.at(1).cause,
              static_cast<std::uint8_t>(obs::ColdCause::AllBusy));
    EXPECT_EQ(sink.count(obs::TraceKind::Arrival), 1u);
    EXPECT_EQ(sink.count(obs::TraceKind::ColdStart), 1u);
    EXPECT_EQ(sink.count(obs::TraceKind::Eviction), 0u);
}

TEST(TraceSinkTest, RingKeepsNewestAndCountsDropped)
{
    obs::TraceSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.record(obs::TraceKind::Arrival, i, 0, Tier::HighEnd,
                    obs::ColdCause::None, i);
    EXPECT_EQ(sink.recorded(), 10u);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);
    // Retained records are the newest four, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(sink.at(i).arg, 6u + i);
    // Per-kind counts survive the wrap (they count ever-recorded).
    EXPECT_EQ(sink.count(obs::TraceKind::Arrival), 10u);
}

TEST(TraceSinkTest, CapacityRoundsUpToPowerOfTwo)
{
    // Minimum ring size is 2 (a 1-slot mask degenerates).
    EXPECT_EQ(obs::TraceSink(1).capacity(), 2u);
    EXPECT_EQ(obs::TraceSink(5).capacity(), 8u);
    EXPECT_EQ(obs::TraceSink(64).capacity(), 64u);
    EXPECT_EQ(obs::TraceSink(100).capacity(), 128u);
}

TEST(TraceSinkTest, MacroIsInertWithoutSink)
{
    obs::TraceSink *sink = nullptr;
    // Argument expressions must not be evaluated into a crash; with a
    // null sink the macro is a single branch.
    ICEB_TRACE(sink, obs::TraceKind::Arrival, 1, 0, Tier::HighEnd,
               obs::ColdCause::None, 0);
    obs::TraceSink real(4);
    sink = &real;
    ICEB_TRACE(sink, obs::TraceKind::Arrival, 1, 0, Tier::HighEnd,
               obs::ColdCause::None, 0);
#if ICEB_OBS_TRACING
    EXPECT_EQ(real.recorded(), 1u);
#else
    EXPECT_EQ(real.recorded(), 0u);
#endif
}

TEST(ChromeTraceTest, ExportStructure)
{
    obs::TraceSink sink(16);
    sink.record(obs::TraceKind::IntervalStart, 0, kInvalidFunction,
                Tier::HighEnd, obs::ColdCause::None, 0);
    sink.record(obs::TraceKind::Arrival, 5, 2, Tier::HighEnd,
                obs::ColdCause::None, 0);
    sink.record(obs::TraceKind::ColdStart, 5, 2, Tier::LowEnd,
                obs::ColdCause::NoContainer, 750);
    sink.record(obs::TraceKind::WarmStart, 9, 2, Tier::HighEnd,
                obs::ColdCause::None, 120);

    obs::ProbeTable probes;
    obs::IntervalSample s;
    s.interval = 0;
    s.time = 0;
    s.idle_warm = {3, 1};
    s.used_mb = {1024, 512};
    s.total_mb = {4096, 8192};
    s.wait_queue = 2;
    probes.addIntervalSample(s);

    std::ostringstream out;
    obs::writeChromeTrace(out, {{"icebreaker", &sink, &probes, {}}});
    const std::string doc = out.str();

    // Document shell + metadata.
    EXPECT_EQ(doc.rfind("{\"displayTimeUnit\":\"ms\",", 0), 0u);
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("\"icebreaker\""), std::string::npos);
    // Cold/warm starts export as duration events with cause args.
    EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(doc.find("\"cold fn2\""), std::string::npos);
    EXPECT_NE(doc.find("\"no_container\""), std::string::npos);
    EXPECT_NE(doc.find("\"warm fn2\""), std::string::npos);
    // Instants and counter tracks from the probe sample.
    EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(doc.find("\"warm pool\""), std::string::npos);
    // Sim-ms timestamps scale to microseconds: cold start at 5 ms.
    EXPECT_NE(doc.find("\"ts\":5000,"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":750000"), std::string::npos);
    // The document is balanced (cheap structural sanity check).
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '{'),
              std::count(doc.begin(), doc.end(), '}'));
    EXPECT_EQ(std::count(doc.begin(), doc.end(), '['),
              std::count(doc.begin(), doc.end(), ']'));
    EXPECT_EQ(doc.back(), '\n');
}

TEST(ChromeTraceTest, EmptyRunListIsValidDocument)
{
    std::ostringstream out;
    obs::writeChromeTrace(out, {});
    EXPECT_EQ(out.str(),
              "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\n]}\n");
}

TEST(DigestTest, KnownFnv1aValues)
{
    // FNV-1a offset basis: digest of nothing.
    EXPECT_EQ(obs::Digest().value(), 0xcbf29ce484222325ull);
    // Digests are order- and boundary-sensitive.
    EXPECT_NE(obs::Digest().addString("ab").addString("c").value(),
              obs::Digest().addString("a").addString("bc").value());
    EXPECT_NE(obs::Digest().addU64(1).addU64(2).value(),
              obs::Digest().addU64(2).addU64(1).value());
    // -0.0 normalizes to +0.0 so equal-comparing metrics digest equal.
    EXPECT_EQ(obs::Digest().addDouble(-0.0).value(),
              obs::Digest().addDouble(0.0).value());
    EXPECT_NE(obs::Digest().addDouble(1.0).value(),
              obs::Digest().addDouble(-1.0).value());
    // Fixed-width lowercase hex.
    EXPECT_EQ(obs::toHex(0), "0000000000000000");
    EXPECT_EQ(obs::toHex(0xdeadbeefull), "00000000deadbeef");
    EXPECT_EQ(obs::Digest().hex().size(), 16u);
}

TEST(ManifestTest, WritesOneJsonLine)
{
    obs::RunManifest m;
    m.run_index = 3;
    m.scheme = "icebreaker";
    m.label = "ratio \"2.4\"";
    m.replicate = 1;
    m.base_seed = 0x51AB1CEBull;
    m.derived_seed = 0xfeedULL;
    m.cluster = "10H+18L (default)";
    m.config_digest = 0xabcdULL;
    m.workload_functions = 24;
    m.workload_intervals = 90;
    m.workload_invocations = 1234;
    m.metrics = {{"invocations", 1234.0}, {"cold_starts", 56.0}};
    m.metrics_digest = 0x1234ULL;
    m.trace_recorded = 1000;
    m.trace_dropped = 0;
    m.probe_samples = 90;

    std::ostringstream out;
    obs::writeManifestLine(out, m);
    const std::string line = out.str();

    // Exactly one line.
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
    // Seeds/digests are hex strings, not JSON numbers.
    EXPECT_NE(line.find("\"base_seed\":\"0000000051ab1ceb\""),
              std::string::npos);
    EXPECT_NE(line.find("\"derived_seed\":\"000000000000feed\""),
              std::string::npos);
    // The label's quotes are escaped.
    EXPECT_NE(line.find("ratio \\\"2.4\\\""), std::string::npos);
    EXPECT_NE(line.find("\"scheme\":\"icebreaker\""),
              std::string::npos);
    EXPECT_NE(line.find("\"cold_starts\":56"), std::string::npos);
    EXPECT_EQ(std::count(line.begin(), line.end(), '{'),
              std::count(line.begin(), line.end(), '}'));
}

TEST(ProbeCsvTest, TidyRowsPerSeries)
{
    obs::ProbeTable probes;
    obs::IntervalSample s;
    s.interval = 2;
    s.time = 1200;
    s.idle_warm = {5, 7};
    s.in_setup = {1, 0};
    s.used_mb = {2048, 1024};
    s.total_mb = {4096, 8192};
    s.wait_queue = 3;
    s.keep_alive_cost = {0.25, 0.125};
    probes.addIntervalSample(s);
    obs::ForecastSample f;
    f.interval = 1;
    f.fn = 9;
    f.predicted = 4.5;
    f.actual = 4.0;
    f.window_mae = 0.5;
    probes.addForecastSample(f);

    std::ostringstream out;
    obs::writeProbeCsv(out, {{"icebreaker", &probes}});
    const std::string csv = out.str();

    EXPECT_EQ(csv.rfind("run,interval,time_ms,series,tier,fn,value\n",
                        0),
              0u);
    // Per-tier cluster series rows: tier set, fn blank.
    EXPECT_NE(csv.find("icebreaker,2,1200,idle_warm,high-end,,5\n"),
              std::string::npos);
    EXPECT_NE(csv.find("icebreaker,2,1200,idle_warm,low-end,,7\n"),
              std::string::npos);
    EXPECT_NE(csv.find("icebreaker,2,1200,used_mb,low-end,,1024\n"),
              std::string::npos);
    EXPECT_NE(
        csv.find("icebreaker,2,1200,keep_alive_cost,high-end,,0.25\n"),
        std::string::npos);
    // Scalar series: tier blank.
    EXPECT_NE(csv.find("icebreaker,2,1200,wait_queue,,,3\n"),
              std::string::npos);
    // Forecast series: fn set, tier blank, interval is the forecast's.
    EXPECT_NE(csv.find("icebreaker,1,,forecast_predicted,,9,4.5\n"),
              std::string::npos);
    EXPECT_NE(csv.find("icebreaker,1,,forecast_window_mae,,9,0.5\n"),
              std::string::npos);
}

TEST(RecorderTest, PillarsNullWhenDisabled)
{
    obs::ObsConfig off;
    obs::RunRecorder none(off);
    EXPECT_EQ(none.traceSink(), nullptr);
    EXPECT_EQ(none.probeTable(), nullptr);
    EXPECT_FALSE(off.any());

    obs::ObsConfig both;
    both.trace = true;
    both.probes = true;
    both.trace_capacity = 64;
    obs::RunRecorder on(both);
    ASSERT_NE(on.traceSink(), nullptr);
    ASSERT_NE(on.probeTable(), nullptr);
    EXPECT_EQ(on.traceSink()->capacity(), 64u);
}

/**
 * The no-perturbation contract: attaching a recorder changes nothing
 * about the simulation's results, and the trace agrees with the
 * metrics about what happened.
 */
TEST(ObsSimulationTest, RecorderDoesNotPerturbMetricsAndAgrees)
{
    const harness::Workload workload = smallWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const sim::SimulatorOptions base =
        sim::SimulatorOptions::forRun(harness::kDefaultBaseSeed, 0);

    const auto policy = harness::makePolicy(harness::Scheme::IceBreaker);
    const sim::SimulationMetrics plain = sim::runSimulation(
        workload.trace, workload.profiles, cluster, *policy, base);

    obs::ObsConfig config;
    config.trace = true;
    config.probes = true;
    obs::RunRecorder recorder(config);
    sim::SimulatorOptions observed = base;
    observed.recorder = &recorder;
    const auto policy2 =
        harness::makePolicy(harness::Scheme::IceBreaker);
    const sim::SimulationMetrics traced = sim::runSimulation(
        workload.trace, workload.profiles, cluster, *policy2, observed);

    EXPECT_EQ(plain.invocations, traced.invocations);
    EXPECT_EQ(plain.cold_starts, traced.cold_starts);
    EXPECT_EQ(plain.warm_starts, traced.warm_starts);
    EXPECT_EQ(plain.sum_service_ms, traced.sum_service_ms);
    EXPECT_EQ(plain.service_times_ms, traced.service_times_ms);
    EXPECT_EQ(plain.totalKeepAliveCost(), traced.totalKeepAliveCost());
    EXPECT_EQ(obs::Digest().addU64(harness::digestMetrics(plain)).value(),
              obs::Digest()
                  .addU64(harness::digestMetrics(traced))
                  .value());

    const obs::TraceSink *sink = recorder.traceSinkIfEnabled();
    ASSERT_NE(sink, nullptr);
#if ICEB_OBS_TRACING
    EXPECT_GT(sink->recorded(), 0u);
    // The trace's per-kind counters agree with the metrics.
    EXPECT_EQ(sink->count(obs::TraceKind::Arrival),
              traced.invocations);
    EXPECT_EQ(sink->count(obs::TraceKind::ColdStart),
              traced.cold_starts);
    EXPECT_EQ(sink->count(obs::TraceKind::WarmStart),
              traced.warm_starts);
    EXPECT_EQ(sink->count(obs::TraceKind::IntervalStart),
              workload.trace.numIntervals());
#endif
    const obs::ProbeTable *probes = recorder.probeTableIfEnabled();
    ASSERT_NE(probes, nullptr);
    // One interval sample per decision boundary, regardless of the
    // tracing compile switch (probes are plain calls, not macros).
    EXPECT_EQ(probes->intervalSampleCount(),
              workload.trace.numIntervals());
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Observation files are part of the runner's determinism contract:
 * `--threads N` writes byte-identical trace/probe/manifest files.
 * Named Runner* so the CI TSan job also exercises a traced
 * multi-threaded grid.
 */
TEST(RunnerObsTest, ObservationFilesIdenticalAcrossThreads)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"", sim::defaultHeterogeneousCluster()}};
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"openwhisk", "icebreaker"}, workload, points,
        harness::kDefaultBaseSeed, 2);

    const std::string dir = testing::TempDir();
    const auto runWith = [&](std::size_t threads,
                             const std::string &tag) {
        harness::ObservationOptions options;
        options.trace_path = dir + "/trace_" + tag + ".json";
        options.probe_path = dir + "/probes_" + tag + ".csv";
        options.manifest_path = dir + "/manifest_" + tag + ".jsonl";
        // Tiny ring so the wrap/drop accounting is exercised too.
        options.trace_capacity = 1u << 10;
        harness::ExperimentRunner runner(threads);
        runner.setObservation(options);
        runner.run(grid);
        return options;
    };

    const harness::ObservationOptions serial = runWith(1, "t1");
    const harness::ObservationOptions threaded = runWith(4, "t4");

    const std::string trace = slurp(serial.trace_path);
    EXPECT_EQ(trace, slurp(threaded.trace_path));
    EXPECT_EQ(slurp(serial.probe_path), slurp(threaded.probe_path));
    const std::string manifest = slurp(serial.manifest_path);
    EXPECT_EQ(manifest, slurp(threaded.manifest_path));

    // One manifest line per grid run, in grid order.
    EXPECT_EQ(std::count(manifest.begin(), manifest.end(), '\n'),
              static_cast<std::ptrdiff_t>(grid.size()));
    EXPECT_LT(manifest.find("\"scheme\":\"openwhisk\""),
              manifest.find("\"scheme\":\"icebreaker\""));
    // The trace document names every run as a process.
    EXPECT_NE(trace.find("\"openwhisk\""), std::string::npos);
    EXPECT_NE(trace.find("\"icebreaker#1\""), std::string::npos);
}

// ------------------------------------------------------- histograms

TEST(HistogramTest, BucketBoundariesPartitionTheRange)
{
    using H = obs::LatencyHistogram;
    // Values below 2^kSubBits land in exact singleton buckets.
    for (std::uint64_t v = 0; v < (1ull << H::kSubBits); ++v) {
        EXPECT_EQ(H::bucketIndex(v), v);
        EXPECT_EQ(H::bucketLowerBound(v), v);
        EXPECT_EQ(H::bucketUpperBound(v), v);
    }
    // Both boundaries of every bucket map back to it, and the buckets
    // tile the whole uint64 range with no gaps or overlaps.
    for (std::size_t i = 0; i < H::kNumBuckets; ++i) {
        EXPECT_EQ(H::bucketIndex(H::bucketLowerBound(i)), i);
        EXPECT_EQ(H::bucketIndex(H::bucketUpperBound(i)), i);
        if (i > 0)
            EXPECT_EQ(H::bucketUpperBound(i - 1) + 1,
                      H::bucketLowerBound(i));
    }
    EXPECT_EQ(H::bucketUpperBound(H::kNumBuckets - 1),
              std::numeric_limits<std::uint64_t>::max());
    // Above the singleton range the relative width is 2^-kSubBits.
    const std::size_t i = H::bucketIndex(1000);
    EXPECT_LE(H::bucketUpperBound(i) - H::bucketLowerBound(i) + 1,
              H::bucketLowerBound(i) >> H::kSubBits);
}

TEST(HistogramTest, RecordCountSumMaxAndQuantiles)
{
    obs::LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    // Singleton buckets: small values are recovered exactly.
    for (std::uint64_t v = 0; v < 8; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.sum(), 28u);
    EXPECT_EQ(h.max(), 7u);
    EXPECT_EQ(h.quantile(0.125), 0u); // rank 1
    EXPECT_EQ(h.quantile(0.5), 3u);   // rank 4 -> value 3
    EXPECT_EQ(h.quantile(1.0), 7u);
    // An outlier: quantile(1.0) clamps to the exact maximum, not the
    // (much wider) bucket upper bound.
    h.record(1'000'000);
    EXPECT_EQ(h.max(), 1'000'000u);
    EXPECT_EQ(h.quantile(1.0), 1'000'000u);
    EXPECT_EQ(h.quantile(0.5), 4u); // rank ceil(4.5) = 5 -> value 4
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative)
{
    using H = obs::LatencyHistogram;
    const auto expectSame = [](const H &a, const H &b) {
        EXPECT_EQ(a.count(), b.count());
        EXPECT_EQ(a.sum(), b.sum());
        EXPECT_EQ(a.max(), b.max());
        for (std::size_t i = 0; i < H::kNumBuckets; ++i)
            EXPECT_EQ(a.bucketCount(i), b.bucketCount(i));
    };

    // Three deterministic streams spanning several octaves.
    H parts[3];
    for (std::size_t p = 0; p < 3; ++p) {
        Rng stream = Rng(0x0b5'1157ull).fork(p);
        for (int n = 0; n < 200; ++n)
            parts[p].record(static_cast<std::uint64_t>(
                stream.uniformInt(0, 1 << (4 * (p + 1)))));
    }

    // (a + b) + c == a + (b + c).
    H left;
    left.merge(parts[0]);
    left.merge(parts[1]);
    left.merge(parts[2]);
    H bc;
    bc.merge(parts[1]);
    bc.merge(parts[2]);
    H right;
    right.merge(parts[0]);
    right.merge(bc);
    expectSame(left, right);

    // c + b + a == a + b + c.
    H reversed;
    reversed.merge(parts[2]);
    reversed.merge(parts[1]);
    reversed.merge(parts[0]);
    expectSame(left, reversed);
}

TEST(HistogramCsvTest, TidyRowsSkipEmptySeries)
{
    obs::HistogramSet set;
    set.cold_start_ms[0].record(4);
    set.cold_start_ms[0].record(4);
    set.cold_start_ms[0].record(100);
    set.wait_queue_ms[1].record(2);

    std::ostringstream out;
    obs::writeHistogramCsv(out, {{"r0", &set}, {"null", nullptr}});
    const std::string csv = out.str();

    EXPECT_EQ(csv.rfind("run,series,tier,bucket_lo,bucket_hi,count\n",
                        0),
              0u);
    // Occupied buckets only: header + 2 cold rows + 1 wait row.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
    EXPECT_NE(csv.find("r0,cold_start_ms,high-end,4,4,2\n"),
              std::string::npos);
    EXPECT_NE(csv.find("r0,wait_queue_ms,low-end,2,2,1\n"),
              std::string::npos);
    EXPECT_EQ(csv.find("setup_attach_ms"), std::string::npos);
    EXPECT_EQ(csv.find("null"), std::string::npos);
}

} // namespace
