/**
 * @file
 * Unit and property tests for the math substrate: matrices, linear
 * solving, polynomial fitting, statistics and the chi-square test.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "math/chi2.hh"
#include "math/matrix.hh"
#include "math/polyfit.hh"
#include "math/stats.hh"

namespace
{

using namespace iceb::math;

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, IdentityMultiplication)
{
    const Matrix m = Matrix::fromRows({{1, 2}, {3, 4}});
    const Matrix i = Matrix::identity(2);
    const Matrix out = m.multiply(i);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(out.at(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(out.at(1, 0), 3.0);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 4.0);
}

TEST(MatrixTest, ProductShapeAndValues)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix b = Matrix::fromRows({{7, 8}, {9, 10}, {11, 12}});
    const Matrix c = a.multiply(b);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(MatrixTest, TransposeRoundTrip)
{
    const Matrix a = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    const Matrix t = a.transposed();
    ASSERT_EQ(t.rows(), 3u);
    ASSERT_EQ(t.cols(), 2u);
    const Matrix back = t.transposed();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(back.at(r, c), a.at(r, c));
}

TEST(MatrixTest, MatrixVectorProduct)
{
    const Matrix a = Matrix::fromRows({{2, 0}, {1, 3}});
    const std::vector<double> v{1.0, 2.0};
    const std::vector<double> out = a.multiply(v);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_DOUBLE_EQ(out[0], 2.0);
    EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, SolveKnownSystem)
{
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    const std::vector<double> b{5.0, 10.0};
    const std::vector<double> x = solveLinearSystem(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-9);
    EXPECT_NEAR(x[1], 3.0, 1e-9);
}

TEST(MatrixTest, SolveRequiresPivoting)
{
    // Leading zero forces a row swap.
    const Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    const std::vector<double> b{2.0, 3.0};
    const std::vector<double> x = solveLinearSystem(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(MatrixTest, SolveSingularSetsFlag)
{
    const Matrix a = Matrix::fromRows({{1, 2}, {2, 4}});
    const std::vector<double> b{1.0, 2.0};
    bool singular = false;
    const std::vector<double> x = solveLinearSystem(a, b, &singular);
    EXPECT_TRUE(singular);
    EXPECT_EQ(x.size(), 2u);
}

TEST(MatrixTest, DotProduct)
{
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(dot({}, {}), 0.0);
}

/** Random solvable systems: A*x recovered within tolerance. */
class SolveSizeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SolveSizeTest, RecoversPlantedSolution)
{
    const std::size_t n = GetParam();
    Matrix a(n, n);
    std::vector<double> planted(n);
    // Diagonally dominant (guaranteed non-singular).
    for (std::size_t r = 0; r < n; ++r) {
        planted[r] = static_cast<double>(r) - 1.5;
        for (std::size_t c = 0; c < n; ++c)
            a.at(r, c) = (r == c)
                ? 10.0 + static_cast<double>(r)
                : std::sin(static_cast<double>(r * 7 + c));
    }
    const std::vector<double> b = a.multiply(planted);
    const std::vector<double> x = solveLinearSystem(a, b);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], planted[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveSizeTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 16u));

// -------------------------------------------------------- FactoredSystem

/**
 * The batched trend fit factors each group's normal matrix once and
 * replays the elimination per lane; the replay must reproduce the
 * direct augmented solve bit for bit, not merely within tolerance.
 */
TEST(FactoredSystemTest, ReplayMatchesDirectSolveBitwise)
{
    for (const std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
        Matrix a(n, n);
        std::vector<double> flat(n * n);
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = 0; c < n; ++c) {
                const double v = (r == c)
                    ? 10.0 + static_cast<double>(r)
                    : std::sin(static_cast<double>(r * 7 + c));
                a.at(r, c) = v;
                flat[r * n + c] = v;
            }
        }

        FactoredSystem system;
        system.factor(flat.data(), n);
        ASSERT_FALSE(system.singular());

        std::vector<double> b(n), x(n);
        for (std::size_t trial = 0; trial < 4; ++trial) {
            for (std::size_t i = 0; i < n; ++i)
                b[i] = std::cos(static_cast<double>(trial * 11 + i)) *
                    static_cast<double>(i + 1);
            system.solve(b.data(), x.data());
            const std::vector<double> direct = solveLinearSystem(a, b);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(std::bit_cast<std::uint64_t>(x[i]),
                          std::bit_cast<std::uint64_t>(direct[i]))
                    << "n=" << n << " trial=" << trial << " i=" << i;
            }
        }
    }
}

TEST(FactoredSystemTest, ReplayHandlesPivoting)
{
    const Matrix a = Matrix::fromRows({{0, 1}, {1, 0}});
    const std::vector<double> flat{0.0, 1.0, 1.0, 0.0};
    FactoredSystem system;
    system.factor(flat.data(), 2);
    ASSERT_FALSE(system.singular());
    const std::vector<double> b{2.0, 3.0};
    std::vector<double> x(2);
    system.solve(b.data(), x.data());
    const std::vector<double> direct = solveLinearSystem(a, b);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x[0]),
              std::bit_cast<std::uint64_t>(direct[0]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x[1]),
              std::bit_cast<std::uint64_t>(direct[1]));
}

TEST(FactoredSystemTest, SingularSystemFlagsAndZeroes)
{
    const std::vector<double> flat{1.0, 2.0, 2.0, 4.0};
    FactoredSystem system;
    system.factor(flat.data(), 2);
    EXPECT_TRUE(system.singular());
    std::vector<double> x{7.0, 7.0};
    const std::vector<double> b{1.0, 2.0};
    system.solve(b.data(), x.data());
    EXPECT_EQ(x[0], 0.0);
    EXPECT_EQ(x[1], 0.0);
}

TEST(FactoredSystemTest, SolveInPlaceAliasesRhs)
{
    const Matrix a = Matrix::fromRows({{2, 1}, {1, 3}});
    const std::vector<double> flat{2.0, 1.0, 1.0, 3.0};
    FactoredSystem system;
    system.factor(flat.data(), 2);
    std::vector<double> x{5.0, 10.0};
    system.solve(x.data(), x.data());
    const std::vector<double> direct =
        solveLinearSystem(a, {5.0, 10.0});
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x[0]),
              std::bit_cast<std::uint64_t>(direct[0]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(x[1]),
              std::bit_cast<std::uint64_t>(direct[1]));
}

// --------------------------------------------------------------- Polyfit

TEST(PolyfitTest, EvaluateHorner)
{
    const Polynomial p(std::vector<double>{1.0, -2.0, 3.0});
    EXPECT_DOUBLE_EQ(p.evaluate(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.evaluate(2.0), 1.0 - 4.0 + 12.0);
    EXPECT_DOUBLE_EQ(p.coeff(2), 3.0);
    EXPECT_DOUBLE_EQ(p.coeff(9), 0.0);
}

TEST(PolyfitTest, ExactQuadraticRecovery)
{
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(2.0 * i * i - 3.0 * i + 5.0);
    }
    const Polynomial p = polyfit(x, y, 2);
    EXPECT_NEAR(p.coeff(0), 5.0, 1e-6);
    EXPECT_NEAR(p.coeff(1), -3.0, 1e-6);
    EXPECT_NEAR(p.coeff(2), 2.0, 1e-7);
}

TEST(PolyfitTest, SeriesFitMatchesExplicitX)
{
    std::vector<double> y;
    for (int i = 0; i < 15; ++i)
        y.push_back(0.5 * i + 1.0);
    const Polynomial p = polyfitSeries(y, 1);
    EXPECT_NEAR(p.coeff(0), 1.0, 1e-9);
    EXPECT_NEAR(p.coeff(1), 0.5, 1e-9);
}

TEST(PolyfitTest, DegenerateXFallsBackToMean)
{
    const std::vector<double> x(10, 3.0);
    std::vector<double> y;
    for (int i = 0; i < 10; ++i)
        y.push_back(i);
    const Polynomial p = polyfit(x, y, 2);
    EXPECT_NEAR(p.evaluate(3.0), 4.5, 1e-9);
}

TEST(PolyfitTest, DetrendRemovesTrend)
{
    std::vector<double> y;
    for (int i = 0; i < 30; ++i)
        y.push_back(4.0 * i + 7.0 + std::sin(i));
    const Polynomial trend = polyfitSeries(y, 1);
    const std::vector<double> residual = detrend(y, trend);
    // Residual should be bounded by the sinusoid, not the trend.
    for (double r : residual)
        EXPECT_LT(std::fabs(r), 1.5);
}

TEST(PolyfitTest, ResidualSumOfSquaresZeroForPerfectFit)
{
    std::vector<double> y;
    for (int i = 0; i < 12; ++i)
        y.push_back(1.0 + 2.0 * i);
    const Polynomial trend = polyfitSeries(y, 1);
    EXPECT_NEAR(residualSumOfSquares(y, trend), 0.0, 1e-9);
}

/** polyfitSeries recovers planted polynomials of every degree. */
class PolyDegreeTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PolyDegreeTest, RecoversPlantedCoefficients)
{
    const std::size_t degree = GetParam();
    std::vector<double> coeffs;
    for (std::size_t k = 0; k <= degree; ++k)
        coeffs.push_back(0.3 * static_cast<double>(k + 1));
    const Polynomial planted(coeffs);
    std::vector<double> y;
    for (int i = 0; i < 40; ++i)
        y.push_back(planted.evaluate(i));
    const Polynomial fit = polyfitSeries(y, degree);
    for (std::size_t k = 0; k <= degree; ++k)
        EXPECT_NEAR(fit.coeff(k), coeffs[k], 1e-5) << "degree " << k;
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyDegreeTest,
                         ::testing::Values(0u, 1u, 2u, 3u));

// ----------------------------------------------------------------- Stats

TEST(StatsTest, MeanVarianceStddev)
{
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_DOUBLE_EQ(variance(v), 4.0);
    EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(StatsTest, EmptyInputsAreZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({}), 0.0);
    EXPECT_DOUBLE_EQ(minValue({}), 0.0);
    EXPECT_DOUBLE_EQ(maxValue({}), 0.0);
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
}

TEST(StatsTest, PercentileInterpolates)
{
    const std::vector<double> v{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 40.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(median(v), 25.0);
}

TEST(StatsTest, PercentileUnsortedInput)
{
    const std::vector<double> v{40.0, 10.0, 30.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.5), 25.0);
}

TEST(StatsTest, MinMaxNormalizeRange)
{
    const std::vector<double> v{1.0, 3.0, 5.0};
    const std::vector<double> n = minMaxNormalize(v);
    EXPECT_DOUBLE_EQ(n[0], 0.0);
    EXPECT_DOUBLE_EQ(n[1], 0.5);
    EXPECT_DOUBLE_EQ(n[2], 1.0);
}

TEST(StatsTest, MinMaxNormalizeConstantIsHalf)
{
    const std::vector<double> n = minMaxNormalize({4.0, 4.0, 4.0});
    for (double v : n)
        EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(StatsTest, CdfLookupAndQuantile)
{
    const Cdf cdf = buildCdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(cdf.at(99.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
}

TEST(StatsTest, ErrorMetrics)
{
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{2.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(meanAbsoluteError(a, b), 1.0);
    EXPECT_NEAR(rootMeanSquaredError(a, b), std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_DOUBLE_EQ(meanAbsoluteError(a, a), 0.0);
}

// ------------------------------------------------------------------ Chi2

TEST(Chi2Test, RegularizedGammaBoundaries)
{
    EXPECT_DOUBLE_EQ(regularizedLowerGamma(1.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedLowerGamma(1.0, 1.0), 1.0 - std::exp(-1.0),
                1e-10);
    EXPECT_NEAR(regularizedLowerGamma(0.5, 100.0), 1.0, 1e-9);
}

TEST(Chi2Test, ChiSquareCdfKnownValues)
{
    // chi2 with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
    for (double x : {0.5, 1.0, 2.0, 5.0}) {
        EXPECT_NEAR(chiSquareCdf(x, 2.0), 1.0 - std::exp(-x / 2.0),
                    1e-9);
    }
    // Median of chi2(1) is about 0.4549.
    EXPECT_NEAR(chiSquareCdf(0.4549, 1.0), 0.5, 1e-3);
}

TEST(Chi2Test, StatisticZeroForPerfectMatch)
{
    const std::vector<double> obs{5.0, 10.0, 15.0};
    EXPECT_DOUBLE_EQ(pearsonChiSquareStatistic(obs, obs), 0.0);
}

TEST(Chi2Test, StatisticGrowsWithMismatch)
{
    const std::vector<double> expected{10.0, 10.0, 10.0};
    const double small = pearsonChiSquareStatistic(
        {11.0, 9.0, 10.0}, expected);
    const double large = pearsonChiSquareStatistic(
        {20.0, 2.0, 8.0}, expected);
    EXPECT_LT(small, large);
}

TEST(Chi2Test, GoodFitHasHighConfidence)
{
    std::vector<double> expected, observed;
    for (int i = 0; i < 30; ++i) {
        expected.push_back(20.0 + i);
        observed.push_back(20.0 + i + ((i % 2 == 0) ? 0.5 : -0.5));
    }
    const GoodnessOfFit fit =
        chiSquareGoodnessOfFit(observed, expected, 3);
    EXPECT_GT(fit.confidence, 0.95);
}

TEST(Chi2Test, BadFitHasLowConfidence)
{
    std::vector<double> expected, observed;
    for (int i = 0; i < 30; ++i) {
        expected.push_back(20.0);
        observed.push_back((i % 2 == 0) ? 5.0 : 40.0);
    }
    const GoodnessOfFit fit =
        chiSquareGoodnessOfFit(observed, expected, 3);
    EXPECT_LT(fit.confidence, 0.01);
}

} // namespace
