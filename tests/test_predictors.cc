/**
 * @file
 * Tests for the predictor zoo: the FFT-based FIP, ARIMA, the hybrid
 * histogram, the LSTM, and the Tn/Fp prediction tracker.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "math/harmonics.hh"
#include "math/polyfit.hh"
#include "math/stats.hh"
#include "math/harmonics.hh"
#include "math/polyfit.hh"
#include "math/stats.hh"
#include "predictors/arima.hh"
#include "predictors/fft_predictor.hh"
#include "predictors/hybrid_histogram.hh"
#include "predictors/lstm.hh"
#include "predictors/prediction_tracker.hh"

namespace
{

using namespace iceb::predictors;

/** Feed a whole series; return one-step forecasts from step `skip`. */
std::vector<double>
rollingForecast(Predictor &predictor, const std::vector<double> &series,
                std::size_t skip)
{
    std::vector<double> forecasts;
    for (std::size_t t = 0; t < series.size(); ++t) {
        predictor.observe(series[t]);
        if (t + 1 < series.size() && t + 1 >= skip)
            forecasts.push_back(predictor.predictNext());
    }
    return forecasts;
}

double
maeAgainst(const std::vector<double> &series, std::size_t skip,
           const std::vector<double> &forecasts)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < forecasts.size(); ++i)
        acc += std::fabs(forecasts[i] - series[skip + i]);
    return acc / static_cast<double>(forecasts.size());
}

// ------------------------------------------------------------------ FIP

TEST(FftPredictorTest, EmptyPredictsZero)
{
    FftPredictor p;
    EXPECT_DOUBLE_EQ(p.predictNext(), 0.0);
}

TEST(FftPredictorTest, SilentWindowPredictsZero)
{
    FftPredictor p;
    for (int i = 0; i < 50; ++i)
        p.observe(0.0);
    EXPECT_DOUBLE_EQ(p.predictNext(), 0.0);
}

TEST(FftPredictorTest, ConstantSignalPredictsConstant)
{
    FftPredictor p;
    for (int i = 0; i < 80; ++i)
        p.observe(5.0);
    EXPECT_NEAR(p.predictNext(), 5.0, 0.3);
}

TEST(FftPredictorTest, TracksSinusoid)
{
    FftPredictorConfig config;
    config.window = 120;
    FftPredictor p(config);
    std::vector<double> series;
    for (int t = 0; t < 240; ++t)
        series.push_back(5.0 + 3.0 * std::cos(2.0 * M_PI * t / 24.0));
    const std::vector<double> forecasts =
        rollingForecast(p, series, 120);
    EXPECT_LT(maeAgainst(series, 120, forecasts), 0.8);
}

TEST(FftPredictorTest, TracksLinearTrend)
{
    FftPredictor p;
    std::vector<double> series;
    for (int t = 0; t < 200; ++t)
        series.push_back(1.0 + 0.1 * t);
    const std::vector<double> forecasts =
        rollingForecast(p, series, 130);
    EXPECT_LT(maeAgainst(series, 130, forecasts), 0.5);
}

TEST(FftPredictorTest, NeverNegative)
{
    FftPredictor p;
    for (int t = 0; t < 150; ++t)
        p.observe(t % 20 == 0 ? 4.0 : 0.0);
    for (int t = 0; t < 10; ++t) {
        EXPECT_GE(p.predictNext(), 0.0);
        p.observe(0.0);
    }
}

TEST(FftPredictorTest, WindowIsBounded)
{
    FftPredictorConfig config;
    config.window = 32;
    FftPredictor p(config);
    for (int i = 0; i < 100; ++i)
        p.observe(1.0);
    EXPECT_EQ(p.sampleCount(), 32u);
    p.reset();
    EXPECT_EQ(p.sampleCount(), 0u);
}

TEST(FftPredictorTest, HorizonFirstElementIsPredictNext)
{
    FftPredictor a, b;
    for (int t = 0; t < 90; ++t) {
        const double v = 3.0 + 2.0 * std::cos(2.0 * M_PI * t / 15.0);
        a.observe(v);
        b.observe(v);
    }
    const std::vector<double> horizon = a.forecastHorizon(5);
    ASSERT_EQ(horizon.size(), 5u);
    EXPECT_DOUBLE_EQ(horizon[0], b.predictNext());
}

TEST(FftPredictorTest, HorizonFollowsPeriodicity)
{
    // Period-20 pulses: the horizon should light up near the next
    // pulse and stay low in between.
    FftPredictorConfig config;
    config.window = 120;
    FftPredictor p(config);
    auto value = [](int t) { return t % 20 == 0 ? 6.0 : 0.0; };
    for (int t = 0; t < 120; ++t)
        p.observe(value(t));
    // Last observed t = 119; next pulse at t = 120 (offset 0 in the
    // horizon), the following at offset 20.
    const std::vector<double> horizon = p.forecastHorizon(21);
    EXPECT_GT(horizon[0], 1.0);
    double mid = 0.0;
    for (std::size_t i = 5; i <= 15; ++i)
        mid = std::max(mid, horizon[i]);
    EXPECT_GT(horizon[20], mid);
}


TEST(FftPredictorTest, RingBufferMatchesEraseWindowReference)
{
    // Regression for the ring-buffer window swap: compose the public
    // vector math APIs over an erase-from-front window (the
    // pre-ring-buffer predictor, step for step) and demand exactly
    // equal forecasts at every stream position, including the
    // wrap-around steps after the window first fills.
    FftPredictorConfig config;
    config.window = 24; // small window -> many wrap-arounds
    FftPredictor predictor(config);
    std::vector<double> window;

    std::vector<double> actual;
    for (int t = 0; t < 90; ++t) {
        const double value = std::max(
            0.0, 3.0 + 2.0 * std::cos(2.0 * M_PI * t / 7.0) + 0.05 * t);

        predictor.observe(value);
        if (window.size() == config.window)
            window.erase(window.begin());
        window.push_back(std::max(0.0, value));

        predictor.forecastHorizon(5, actual);
        ASSERT_EQ(actual.size(), 5u);

        // Reference: the predictor's documented pipeline on the
        // erase-based window.
        std::vector<double> expected(5, 0.0);
        const bool all_zero = std::all_of(
            window.begin(), window.end(),
            [](double v) { return v == 0.0; });
        if (!all_zero && window.size() < config.min_samples) {
            std::fill(expected.begin(), expected.end(),
                      std::max(0.0, iceb::math::mean(window)));
        } else if (!all_zero) {
            const iceb::math::Polynomial trend =
                iceb::math::polyfitSeries(window, config.poly_degree);
            const std::vector<double> residual =
                iceb::math::detrend(window, trend);
            const std::vector<iceb::math::Harmonic> harmonics =
                iceb::math::decomposeForExtrapolation(residual,
                                                      config.harmonics);
            for (std::size_t step = 0; step < expected.size(); ++step) {
                const double at =
                    static_cast<double>(window.size() + step);
                expected[step] = std::max(
                    0.0, trend.evaluate(at) +
                        iceb::math::evaluateHarmonics(harmonics, at));
            }
        }
        for (std::size_t step = 0; step < expected.size(); ++step) {
            EXPECT_DOUBLE_EQ(actual[step], expected[step])
                << "t=" << t << " step=" << step;
        }
    }
}

TEST(FftPredictorTest, IncrementalSpectrumMatchesDefaultPath)
{
    // The opt-in sliding-DFT mode must agree with the default
    // full-recompute path within 1e-6 at every step -- across many
    // resync cadences, through the initial fill, and over enough
    // slides to expose rotation drift if the resync policy failed to
    // bound it.
    FftPredictorConfig base;
    base.window = 60;
    for (const std::size_t resync_every : {1u, 16u, 64u}) {
        FftPredictorConfig inc_config = base;
        inc_config.incremental_spectrum = true;
        inc_config.resync_every = resync_every;

        FftPredictor reference(base);
        FftPredictor incremental(inc_config);
        std::vector<double> want, got;
        for (int t = 0; t < 400; ++t) {
            const double value = std::max(
                0.0, 6.0 + 3.0 * std::cos(2.0 * M_PI * t / 12.5) +
                    1.5 * std::cos(2.0 * M_PI * t / 30.0) + 0.01 * t);
            reference.observe(value);
            incremental.observe(value);
            reference.forecastHorizon(8, want);
            incremental.forecastHorizon(8, got);
            for (std::size_t step = 0; step < want.size(); ++step) {
                EXPECT_NEAR(got[step], want[step], 1e-6)
                    << "resync=" << resync_every << " t=" << t
                    << " step=" << step;
            }
        }
    }
}

TEST(FftPredictorTest, IncrementalResetMatchesFreshPredictor)
{
    FftPredictorConfig config;
    config.window = 32;
    config.incremental_spectrum = true;
    FftPredictor predictor(config);
    for (int t = 0; t < 100; ++t)
        predictor.observe(2.0 + std::cos(0.3 * t));
    predictor.reset();
    EXPECT_EQ(predictor.sampleCount(), 0u);
    EXPECT_DOUBLE_EQ(predictor.predictNext(), 0.0);

    FftPredictor fresh(config);
    std::vector<double> a, b;
    for (int t = 0; t < 80; ++t) {
        const double value = 1.0 + std::cos(0.2 * t);
        predictor.observe(value);
        fresh.observe(value);
        predictor.forecastHorizon(4, a);
        fresh.forecastHorizon(4, b);
        for (std::size_t step = 0; step < a.size(); ++step)
            EXPECT_DOUBLE_EQ(a[step], b[step]) << "t=" << t;
    }
}

// ---------------------------------------------------------------- ARIMA

TEST(ArimaTest, ConstantSeries)
{
    ArimaPredictor p;
    for (int i = 0; i < 100; ++i)
        p.observe(7.0);
    EXPECT_NEAR(p.predictNext(), 7.0, 0.5);
}

TEST(ArimaTest, LinearTrendViaDifferencing)
{
    ArimaPredictor p(ArimaConfig{2, 1, 1, 120, 1});
    for (int t = 0; t < 100; ++t)
        p.observe(2.0 * t);
    EXPECT_NEAR(p.predictNext(), 200.0, 4.0);
}

TEST(ArimaTest, TracksSlowSinusoid)
{
    ArimaPredictor p;
    std::vector<double> series;
    for (int t = 0; t < 200; ++t)
        series.push_back(10.0 + 4.0 * std::sin(2.0 * M_PI * t / 40.0));
    const std::vector<double> forecasts =
        rollingForecast(p, series, 120);
    EXPECT_LT(maeAgainst(series, 120, forecasts), 1.2);
}

TEST(ArimaTest, WorseThanFftOnSparseBurstTrains)
{
    // The paper's Fig. 10 claim, as a property: on a sparse periodic
    // burst train (where predicting requires knowing *when* the next
    // burst lands) the FFT FIP's error on burst intervals is smaller
    // than ARIMA's, both before and after a period switch.
    std::vector<double> series;
    for (int t = 0; t < 500; ++t) {
        const bool burst =
            t < 250 ? (t % 16 < 2) : ((t - 250) % 28 < 2);
        series.push_back(burst ? 5.0 : 0.0);
    }
    ArimaPredictor arima;
    FftPredictor fft;
    double arima_err = 0.0;
    double fft_err = 0.0;
    for (std::size_t t = 0; t < series.size(); ++t) {
        arima.observe(series[t]);
        fft.observe(series[t]);
        if (t + 1 >= series.size())
            break;
        if (t >= 150 && series[t + 1] > 0.0) {
            arima_err += std::fabs(arima.predictNext() - series[t + 1]);
            fft_err += std::fabs(fft.predictNext() - series[t + 1]);
        }
    }
    EXPECT_LT(fft_err, arima_err);
}

TEST(ArimaTest, NeverNegativeAndResets)
{
    ArimaPredictor p;
    for (int i = 0; i < 60; ++i)
        p.observe(i % 7 == 0 ? 1.0 : 0.0);
    EXPECT_GE(p.predictNext(), 0.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.predictNext(), 0.0);
}

// ----------------------------------------------------- Hybrid histogram

TEST(HybridHistogramTest, NotRepresentativeWithoutSamples)
{
    HybridHistogram h;
    EXPECT_FALSE(h.representative());
    EXPECT_FALSE(h.forecast().usable);
}

TEST(HybridHistogramTest, RegularIdleTimesGiveTightWindow)
{
    HybridHistogram h;
    for (int i = 0; i <= 20; ++i)
        h.observeArrival(i * 30);
    ASSERT_TRUE(h.representative());
    const IdleWindowForecast f = h.forecast();
    ASSERT_TRUE(f.usable);
    EXPECT_NEAR(f.head_minutes, 30.0, 1.0);
    EXPECT_NEAR(f.tail_minutes, 31.0, 2.0);
    EXPECT_EQ(h.sampleCount(), 20u);
}

TEST(HybridHistogramTest, QuantilesFromMixedGaps)
{
    HybridHistogram h;
    iceb::IntervalIndex t = 0;
    // 18 one-minute gaps, 2 sixty-minute gaps.
    for (int burst = 0; burst < 2; ++burst) {
        for (int i = 0; i < 9; ++i)
            h.observeArrival(++t);
        t += 60;
        h.observeArrival(t);
    }
    EXPECT_DOUBLE_EQ(h.quantileMinutes(0.05), 1.0);
    EXPECT_DOUBLE_EQ(h.quantileMinutes(0.99), 60.0);
}

TEST(HybridHistogramTest, WideWindowIsRejected)
{
    // Idle gaps span 1..60 minutes: a [1, 60] window would cost more
    // than a fixed keep-alive, so the forecast must not be usable via
    // the histogram path.
    HybridHistogram h;
    iceb::IntervalIndex t = 0;
    for (int i = 0; i < 30; ++i) {
        t += (i % 2 == 0) ? 1 : 60;
        h.observeArrival(t);
    }
    const IdleWindowForecast f = h.forecast();
    if (f.usable) {
        EXPECT_LE(f.tail_minutes - f.head_minutes, 21.0);
    }
}

TEST(HybridHistogramTest, OutOfBoundsGapsBreakRepresentativeness)
{
    HybridHistogramConfig config;
    config.max_idle_minutes = 60;
    HybridHistogram h(config);
    for (int i = 0; i < 20; ++i)
        h.observeArrival(i * 500); // 500-minute gaps, all OOB
    EXPECT_FALSE(h.representative());
}

// ------------------------------------------------------------------ LSTM

TEST(LstmTest, LearnsConstantSeries)
{
    LstmConfig config;
    config.window = 24;
    config.epochs_per_observe = 6;
    LstmPredictor p(config);
    for (int i = 0; i < 120; ++i)
        p.observe(4.0);
    EXPECT_NEAR(p.predictNext(), 4.0, 1.0);
}

TEST(LstmTest, LearnsAlternatingSeries)
{
    LstmConfig config;
    config.window = 24;
    config.epochs_per_observe = 8;
    LstmPredictor p(config);
    for (int i = 0; i < 300; ++i)
        p.observe(i % 2 == 0 ? 6.0 : 2.0);
    // After a 6.0 (i = 299 is odd -> last observed 2.0), next is 6.0.
    const double forecast = p.predictNext();
    EXPECT_GT(forecast, 3.5);
}

TEST(LstmTest, DeterministicGivenSeed)
{
    LstmPredictor a, b;
    for (int i = 0; i < 60; ++i) {
        const double v = (i % 5 == 0) ? 3.0 : 1.0;
        a.observe(v);
        b.observe(v);
    }
    EXPECT_DOUBLE_EQ(a.predictNext(), b.predictNext());
}

TEST(LstmTest, NeverNegativeAndResetClearsState)
{
    LstmPredictor p;
    for (int i = 0; i < 80; ++i)
        p.observe(i % 11 == 0 ? 2.0 : 0.0);
    EXPECT_GE(p.predictNext(), 0.0);
    p.reset();
    EXPECT_DOUBLE_EQ(p.predictNext(), 0.0);
}

// --------------------------------------------------- Prediction tracker

TEST(PredictionTrackerTest, RatesOverWindow)
{
    PredictionTracker tracker(4);
    tracker.recordInterval(10, 2, 5);
    tracker.recordInterval(10, 0, 0);
    EXPECT_DOUBLE_EQ(tracker.trueNegativeRate(), 2.0 / 20.0);
    EXPECT_DOUBLE_EQ(tracker.falsePositiveRate(), 5.0 / 20.0);
    EXPECT_EQ(tracker.windowInvocations(), 20u);
}

TEST(PredictionTrackerTest, OldIntervalsRollOut)
{
    PredictionTracker tracker(2);
    tracker.recordInterval(10, 10, 0);
    tracker.recordInterval(10, 0, 0);
    tracker.recordInterval(10, 0, 0); // pushes the all-cold interval out
    EXPECT_DOUBLE_EQ(tracker.trueNegativeRate(), 0.0);
}

TEST(PredictionTrackerTest, NoInvocationsEdgeCases)
{
    PredictionTracker tracker(4);
    EXPECT_DOUBLE_EQ(tracker.trueNegativeRate(), 0.0);
    EXPECT_DOUBLE_EQ(tracker.falsePositiveRate(), 0.0);
    tracker.recordInterval(0, 0, 3);
    EXPECT_DOUBLE_EQ(tracker.falsePositiveRate(), 1.0);
    tracker.reset();
    EXPECT_DOUBLE_EQ(tracker.falsePositiveRate(), 0.0);
}

TEST(PredictionTrackerTest, FalsePositiveCanExceedOne)
{
    PredictionTracker tracker(4);
    tracker.recordInterval(2, 0, 10);
    EXPECT_DOUBLE_EQ(tracker.falsePositiveRate(), 5.0);
}

TEST(PredictionTrackerDeathTest, MoreColdThanInvokedPanics)
{
    PredictionTracker tracker(4);
    EXPECT_DEATH(tracker.recordInterval(1, 2, 0), "cold starts");
}

} // namespace
