/**
 * @file
 * Cross-module integration and conservation properties: for every
 * scheme on a shared workload, the metric identities that must hold
 * regardless of policy behaviour (counts add up, costs split
 * consistently, per-function aggregates reconcile with the totals),
 * plus end-to-end determinism and a parameterized all-schemes sweep.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "harness/experiment.hh"
#include "harness/report.hh"
#include "sim/cluster_config.hh"

namespace
{

using namespace iceb;

const harness::Workload &
sharedWorkload()
{
    static const harness::Workload workload = [] {
        trace::SyntheticConfig config;
        config.num_functions = 90;
        config.num_intervals = 420;
        config.min_memory_mb = 256;
        return harness::makeWorkload(config);
    }();
    return workload;
}

class SchemeInvariantTest
    : public ::testing::TestWithParam<harness::Scheme>
{
};

TEST_P(SchemeInvariantTest, CountsAndComponentsReconcile)
{
    const harness::Workload &workload = sharedWorkload();
    const auto result = harness::runScheme(
        GetParam(), workload, sim::defaultHeterogeneousCluster());
    const sim::SimulationMetrics &m = result.metrics;

    // Every trace invocation was served exactly once.
    EXPECT_EQ(m.invocations, workload.trace.totalInvocations());
    EXPECT_EQ(m.warm_starts + m.cold_starts, m.invocations);
    EXPECT_EQ(m.cold_no_container + m.cold_all_busy +
                  m.cold_setup_attach,
              m.cold_starts);

    // Tier-split samples cover every invocation.
    EXPECT_EQ(m.service_times_high_ms.size() +
                  m.service_times_low_ms.size(),
              m.invocations);
    EXPECT_EQ(m.service_times_ms.size(), m.invocations);

    // Service-time components compose the total.
    EXPECT_NEAR(m.sum_service_ms,
                m.sum_wait_ms + m.sum_cold_ms + m.sum_exec_ms +
                    m.sum_overhead_ms,
                1e-6 * std::max(1.0, m.sum_service_ms));

    // Per-function aggregates reconcile with the global counters.
    std::uint64_t invocations = 0;
    std::uint64_t cold = 0;
    double service = 0.0;
    Dollars keep_alive = 0.0;
    for (const auto &fm : m.per_function) {
        invocations += fm.invocations;
        cold += fm.cold_starts;
        service += fm.sum_service_ms;
        keep_alive += fm.keep_alive_cost;
    }
    EXPECT_EQ(invocations, m.invocations);
    EXPECT_EQ(cold, m.cold_starts);
    EXPECT_NEAR(service, m.sum_service_ms,
                1e-6 * std::max(1.0, service));
    EXPECT_NEAR(keep_alive, m.totalKeepAliveCost(),
                1e-9 + 1e-9 * keep_alive);

    // Costs are non-negative and split per tier.
    for (Tier tier : {Tier::HighEnd, Tier::LowEnd}) {
        const sim::TierKeepAlive &ka = m.tierKeepAlive(tier);
        EXPECT_GE(ka.successful_cost, 0.0);
        EXPECT_GE(ka.wasteful_cost, 0.0);
        EXPECT_GE(ka.wasted_mb_ms, 0.0);
    }
}

TEST_P(SchemeInvariantTest, DeterministicEndToEnd)
{
    const harness::Workload &workload = sharedWorkload();
    const auto a = harness::runScheme(
        GetParam(), workload, sim::defaultHeterogeneousCluster());
    const auto b = harness::runScheme(
        GetParam(), workload, sim::defaultHeterogeneousCluster());
    EXPECT_EQ(a.metrics.cold_starts, b.metrics.cold_starts);
    EXPECT_DOUBLE_EQ(a.metrics.sum_service_ms, b.metrics.sum_service_ms);
    EXPECT_DOUBLE_EQ(a.metrics.totalKeepAliveCost(),
                     b.metrics.totalKeepAliveCost());
}

TEST_P(SchemeInvariantTest, SurvivesHomogeneousClusters)
{
    const harness::Workload &workload = sharedWorkload();
    for (const sim::ClusterConfig &cluster :
         {sim::homogeneousHighEndCluster(),
          sim::homogeneousLowEndCluster()}) {
        const auto result =
            harness::runScheme(GetParam(), workload, cluster);
        EXPECT_EQ(result.metrics.invocations,
                  workload.trace.totalInvocations())
            << cluster.name;
        // A single-tier cluster must place everything on that tier.
        if (cluster.spec(Tier::LowEnd).server_count == 0)
            EXPECT_TRUE(result.metrics.service_times_low_ms.empty());
        if (cluster.spec(Tier::HighEnd).server_count == 0)
            EXPECT_TRUE(result.metrics.service_times_high_ms.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeInvariantTest,
    ::testing::Values(harness::Scheme::OpenWhisk, harness::Scheme::Wild,
                      harness::Scheme::FaasCache,
                      harness::Scheme::IceBreaker,
                      harness::Scheme::Oracle),
    [](const ::testing::TestParamInfo<harness::Scheme> &info) {
        return harness::schemeName(info.param);
    });

TEST(IntegrationTest, HeadlineOrderingOnPressuredWorkload)
{
    // The paper's headline on a memory-pressured workload: IceBreaker
    // posts the best online keep-alive cost AND the best online
    // service time; the Oracle bounds both.
    trace::SyntheticConfig config;
    config.num_functions = 380;
    config.num_intervals = 480;
    config.min_memory_mb = 256;
    const harness::Workload workload = harness::makeWorkload(config);
    const auto results = harness::runAllSchemes(
        workload, sim::defaultHeterogeneousCluster());

    const auto &wild = results[1].metrics;
    const auto &faascache = results[2].metrics;
    const auto &icebreaker = results[3].metrics;
    const auto &oracle = results[4].metrics;

    EXPECT_LT(icebreaker.totalKeepAliveCost(),
              wild.totalKeepAliveCost());
    EXPECT_LT(icebreaker.totalKeepAliveCost(),
              faascache.totalKeepAliveCost());
    EXPECT_LT(icebreaker.meanServiceMs(), wild.meanServiceMs());
    EXPECT_LE(icebreaker.meanServiceMs(),
              faascache.meanServiceMs() * 1.02);
    EXPECT_LE(oracle.meanServiceMs(), icebreaker.meanServiceMs());
    EXPECT_LE(oracle.totalKeepAliveCost(),
              icebreaker.totalKeepAliveCost());
}

TEST(IntegrationTest, BudgetSweepRunsEverywhere)
{
    trace::SyntheticConfig config;
    config.num_functions = 50;
    config.num_intervals = 180;
    const harness::Workload workload = harness::makeWorkload(config);
    for (const sim::ClusterConfig &cluster :
         sim::budgetConstantSweep()) {
        const auto result = harness::runScheme(
            harness::Scheme::IceBreaker, workload, cluster);
        EXPECT_EQ(result.metrics.invocations,
                  workload.trace.totalInvocations())
            << cluster.name;
    }
}

TEST(IntegrationTest, OverheadAccountedForEveryScheme)
{
    const harness::Workload &workload = sharedWorkload();
    const auto results = harness::runAllSchemes(
        workload, sim::defaultHeterogeneousCluster());
    // IceBreaker charges 30 ms, Wild/FaasCache 10-20 ms, the baseline
    // and Oracle nothing (paper Sec. 5 overhead accounting).
    const double n = static_cast<double>(results[0].metrics.invocations);
    EXPECT_DOUBLE_EQ(results[0].metrics.sum_overhead_ms, 0.0);
    EXPECT_NEAR(results[1].metrics.sum_overhead_ms / n, 15.0, 1e-9);
    EXPECT_NEAR(results[2].metrics.sum_overhead_ms / n, 12.0, 1e-9);
    EXPECT_NEAR(results[3].metrics.sum_overhead_ms / n, 30.0, 1e-9);
    EXPECT_DOUBLE_EQ(results[4].metrics.sum_overhead_ms, 0.0);
}

} // namespace
