/**
 * @file
 * Tests for the trace substrate: container types, the synthetic
 * generator's statistical properties, the Azure CSV loader, and the
 * trace characterisation used by Fig. 5.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/azure_loader.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"
#include "trace/trace_stats.hh"

namespace
{

using namespace iceb;
using namespace iceb::trace;

FunctionSeries
makeSeries(std::vector<std::uint32_t> counts)
{
    FunctionSeries series;
    series.name = "t";
    series.memory_mb = 128;
    series.avg_exec_ms = 500;
    series.concurrency = std::move(counts);
    return series;
}

// ----------------------------------------------------------------- Trace

TEST(TraceTest, AddFunctionAssignsDenseIds)
{
    Trace trace(4, 60'000);
    const FunctionId a = trace.addFunction(makeSeries({0, 1, 2, 0}));
    const FunctionId b = trace.addFunction(makeSeries({1, 0, 0, 1}));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(trace.numFunctions(), 2u);
    EXPECT_EQ(trace.function(a).id, a);
}

TEST(TraceTest, TotalsAndHorizon)
{
    Trace trace(4, 60'000);
    trace.addFunction(makeSeries({0, 1, 2, 0}));
    trace.addFunction(makeSeries({1, 0, 0, 1}));
    EXPECT_EQ(trace.totalInvocations(), 5u);
    EXPECT_EQ(trace.horizonMs(), 240'000);
    EXPECT_EQ(trace.intervalMs(), 60'000);
}

TEST(TraceTest, SeriesAccessors)
{
    const FunctionSeries s = makeSeries({0, 3, 0, 2});
    EXPECT_EQ(s.totalInvocations(), 5u);
    EXPECT_EQ(s.activeIntervals(), 2u);
    EXPECT_EQ(s.at(1), 3u);
    EXPECT_EQ(s.at(-1), 0u);
    EXPECT_EQ(s.at(99), 0u);
}

TEST(TraceDeathTest, MismatchedSeriesLengthPanics)
{
    Trace trace(4, 60'000);
    EXPECT_DEATH(trace.addFunction(makeSeries({1, 2})), "length");
}

TEST(TraceTest, ClassNames)
{
    EXPECT_STREQ(functionClassName(FunctionClass::Periodic), "periodic");
    EXPECT_STREQ(functionClassName(FunctionClass::Infrequent),
                 "infrequent");
    EXPECT_STREQ(functionClassName(FunctionClass::Random), "random");
}

// ------------------------------------------------------------- Synthetic

TEST(SyntheticTest, GeneratesRequestedGeometry)
{
    SyntheticConfig config;
    config.num_functions = 30;
    config.num_intervals = 200;
    const Trace trace = SyntheticTraceGenerator(config).generate();
    EXPECT_EQ(trace.numFunctions(), 30u);
    EXPECT_EQ(trace.numIntervals(), 200u);
    for (const auto &fn : trace.functions()) {
        EXPECT_EQ(fn.concurrency.size(), 200u);
        EXPECT_GT(fn.memory_mb, 0);
        EXPECT_GT(fn.avg_exec_ms, 0);
    }
}

TEST(SyntheticTest, DeterministicForSameSeed)
{
    SyntheticConfig config;
    config.num_functions = 20;
    config.num_intervals = 150;
    const Trace a = SyntheticTraceGenerator(config).generate();
    const Trace b = SyntheticTraceGenerator(config).generate();
    ASSERT_EQ(a.numFunctions(), b.numFunctions());
    for (FunctionId fn = 0; fn < a.numFunctions(); ++fn)
        EXPECT_EQ(a.function(fn).concurrency,
                  b.function(fn).concurrency);
}

TEST(SyntheticTest, DifferentSeedsDiffer)
{
    SyntheticConfig config;
    config.num_functions = 10;
    config.num_intervals = 100;
    const Trace a = SyntheticTraceGenerator(config).generate();
    config.seed += 1;
    const Trace b = SyntheticTraceGenerator(config).generate();
    bool any_diff = false;
    for (FunctionId fn = 0; fn < a.numFunctions(); ++fn)
        if (a.function(fn).concurrency != b.function(fn).concurrency)
            any_diff = true;
    EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ClassMixMatchesConfig)
{
    SyntheticConfig config;
    config.num_functions = 200;
    config.num_intervals = 100;
    const Trace trace = SyntheticTraceGenerator(config).generate();
    std::size_t infrequent = 0;
    std::size_t random = 0;
    for (const auto &fn : trace.functions()) {
        if (fn.cls == FunctionClass::Infrequent)
            ++infrequent;
        if (fn.cls == FunctionClass::Random)
            ++random;
    }
    EXPECT_EQ(infrequent,
              static_cast<std::size_t>(200 * config.frac_infrequent + 0.5));
    EXPECT_EQ(random,
              static_cast<std::size_t>(200 * config.frac_random + 0.5));
}

TEST(SyntheticTest, InfrequentFunctionsAreSparse)
{
    SyntheticConfig config;
    config.num_functions = 60;
    config.num_intervals = 2880; // two days
    const Trace trace = SyntheticTraceGenerator(config).generate();
    for (const auto &fn : trace.functions()) {
        if (fn.cls != FunctionClass::Infrequent)
            continue;
        EXPECT_LE(fn.totalInvocations(), 4u);
        EXPECT_GE(fn.totalInvocations(), 1u);
    }
}

TEST(SyntheticTest, SingleSeriesGeneration)
{
    SyntheticConfig config;
    config.num_intervals = 300;
    const SyntheticTraceGenerator gen(config);
    const FunctionSeries s =
        gen.generateSeries(FunctionClass::PeriodShift, 7);
    EXPECT_EQ(s.cls, FunctionClass::PeriodShift);
    EXPECT_EQ(s.concurrency.size(), 300u);
    EXPECT_GT(s.totalInvocations(), 0u);
}

TEST(SyntheticTest, BurstTrainEvaluation)
{
    BurstTrain train;
    train.period = 10.0;
    train.phase = 0.0;
    train.burst_len = 1;
    train.amplitude = 4.0;
    train.mod_depth = 0.0;
    // Active exactly at multiples of the period.
    EXPECT_GT(evaluateBurstTrain(train, 0.0), 3.9);
    EXPECT_DOUBLE_EQ(evaluateBurstTrain(train, 5.0), 0.0);
    EXPECT_GT(evaluateBurstTrain(train, 20.0), 3.9);
}

TEST(SyntheticTest, BurstTrainHumpShape)
{
    BurstTrain train;
    train.period = 20.0;
    train.phase = 0.0;
    train.burst_len = 6;
    train.amplitude = 10.0;
    train.mod_depth = 0.0;
    // Rises toward the middle of the burst, falls at the edges.
    const double edge = evaluateBurstTrain(train, 0.0);
    const double mid = evaluateBurstTrain(train, 2.5);
    EXPECT_GT(mid, edge);
    EXPECT_GT(mid, 8.0);
    EXPECT_DOUBLE_EQ(evaluateBurstTrain(train, 7.0), 0.0);
}

TEST(SyntheticTest, PeriodSwitchSignalChangesPeriod)
{
    const std::vector<double> signal =
        makePeriodSwitchSignal(200, 10.0, 20.0, 100, 5.0, 3.0);
    ASSERT_EQ(signal.size(), 200u);
    // All values within [level - amp, level + amp].
    for (double v : signal) {
        EXPECT_GE(v, 2.0 - 1e-9);
        EXPECT_LE(v, 8.0 + 1e-9);
    }
}

TEST(SyntheticDeathTest, OverfullClassMixIsFatal)
{
    SyntheticConfig config;
    config.frac_multi_harmonic = 0.9;
    config.frac_infrequent = 0.9;
    EXPECT_EXIT(SyntheticTraceGenerator{config},
                ::testing::ExitedWithCode(1), "fractions");
}

/** Every class generates non-degenerate series. */
class SyntheticClassTest
    : public ::testing::TestWithParam<FunctionClass>
{
};

TEST_P(SyntheticClassTest, SeriesHasInvocationsAndCorrectClass)
{
    SyntheticConfig config;
    config.num_intervals = 1440;
    const SyntheticTraceGenerator gen(config);
    const FunctionSeries s = gen.generateSeries(GetParam(), 11);
    EXPECT_EQ(s.cls, GetParam());
    EXPECT_GT(s.totalInvocations(), 0u);
    EXPECT_LT(s.activeIntervals(), s.concurrency.size());
}

INSTANTIATE_TEST_SUITE_P(
    Classes, SyntheticClassTest,
    ::testing::Values(FunctionClass::Periodic,
                      FunctionClass::MultiHarmonic,
                      FunctionClass::PeriodShift, FunctionClass::Spiky,
                      FunctionClass::Infrequent, FunctionClass::Random));

// ---------------------------------------------------------- Azure loader

TEST(AzureLoaderTest, ParsesSchema)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1,m2,m3\n"
        "fnA,256,700,0,2,1\n"
        "fnB,512,1200,3,0,0\n");
    const Trace trace = loadAzureCsv(in);
    ASSERT_EQ(trace.numFunctions(), 2u);
    EXPECT_EQ(trace.numIntervals(), 3u);
    EXPECT_EQ(trace.function(0).name, "fnA");
    EXPECT_EQ(trace.function(0).memory_mb, 256);
    EXPECT_EQ(trace.function(0).avg_exec_ms, 700);
    EXPECT_EQ(trace.function(0).concurrency,
              (std::vector<std::uint32_t>{0, 2, 1}));
    EXPECT_EQ(trace.function(1).at(0), 3u);
}

TEST(AzureLoaderTest, MaxFunctionsCap)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1\n"
        "a,1,1,1\nb,1,1,1\nc,1,1,1\n");
    AzureLoadOptions options;
    options.max_functions = 2;
    const Trace trace = loadAzureCsv(in, options);
    EXPECT_EQ(trace.numFunctions(), 2u);
}

TEST(AzureLoaderTest, RoundTripThroughWriter)
{
    SyntheticConfig config;
    config.num_functions = 8;
    config.num_intervals = 60;
    const Trace original = SyntheticTraceGenerator(config).generate();
    std::ostringstream out;
    writeAzureCsv(out, original);
    std::istringstream in(out.str());
    const Trace loaded = loadAzureCsv(in);
    ASSERT_EQ(loaded.numFunctions(), original.numFunctions());
    for (FunctionId fn = 0; fn < loaded.numFunctions(); ++fn) {
        EXPECT_EQ(loaded.function(fn).concurrency,
                  original.function(fn).concurrency);
        EXPECT_EQ(loaded.function(fn).memory_mb,
                  original.function(fn).memory_mb);
    }
}

TEST(AzureLoaderDeathTest, RejectsMalformedRows)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1,m2\n"
        "a,1,1,1,2\n"
        "b,1,1,1\n"); // second row is one minute column short
    EXPECT_EXIT(loadAzureCsv(in), ::testing::ExitedWithCode(1),
                "minute columns");
}

TEST(AzureLoaderDeathTest, RejectsNegativeCounts)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1\n"
        "a,1,1,-4\n");
    EXPECT_EXIT(loadAzureCsv(in), ::testing::ExitedWithCode(1),
                "negative");
}

// ------------------------------------------------------------ TraceStats

TEST(TraceStatsTest, PeriodicCensusFindsStructure)
{
    SyntheticConfig config;
    config.num_functions = 120;
    config.num_intervals = 720;
    const Trace trace = SyntheticTraceGenerator(config).generate();
    const TraceCharacter character = characterizeTrace(trace);
    // The generator plants ~88% structurally periodic functions; the
    // census should find most of them, and the bulk should have
    // fewer than ten significant harmonics (paper Fig. 5b; sharp
    // single-minute pulse trains legitimately exceed ten).
    EXPECT_GT(character.fraction_periodic, 0.6);
    EXPECT_GT(character.fraction_under_ten, 0.3);
    EXPECT_GT(character.fraction_multi_harmonic, 0.2);
    EXPECT_EQ(character.functions.size(), trace.numFunctions());
}

TEST(TraceStatsTest, InterArrivalGaps)
{
    const FunctionSeries s = makeSeries({1, 0, 0, 2, 1, 0, 1});
    const std::vector<double> gaps = interArrivalIntervals(s);
    EXPECT_EQ(gaps, (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(TraceStatsTest, NoArrivalsNoGaps)
{
    const FunctionSeries s = makeSeries({0, 0, 0});
    EXPECT_TRUE(interArrivalIntervals(s).empty());
}

} // namespace
