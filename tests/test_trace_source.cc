/**
 * @file
 * Byte-identity lockdown for the workload boundary (sim/trace_source).
 *
 * The contract under test: a StreamingWorkloadSource — chunked row
 * ingest, external-memory spill sort, k-way window merge — feeds the
 * engine EXACTLY the arrival windows a MaterializedTraceSource built
 * from the same workload would, record for record, and therefore
 * every simulation result is identical between the two paths: classic
 * engine, sharded engine at any worker count, CSV-ingested workloads,
 * forced-spill chunking, and repeated runs off one rewound source.
 * Satellites pin the streamed profile matching, the SeBS benchmark
 * categories, the --max-cells shard-plan clamp, and the line/column
 * diagnostics of the chunked CSV reader.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hh"
#include "core/icebreaker.hh"
#include "harness/registry.hh"
#include "policies/openwhisk_policy.hh"
#include "sim/sharded_simulator.hh"
#include "sim/simulator.hh"
#include "sim/trace_source.hh"
#include "trace/azure_loader.hh"
#include "trace/stream_reader.hh"
#include "trace/synthetic.hh"
#include "workload/benchmark_suite.hh"
#include "workload/profile_matcher.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

/** Small but structurally rich workload config shared by the tests. */
trace::SyntheticConfig
smallConfig()
{
    trace::SyntheticConfig config;
    config.num_functions = 40;
    config.num_intervals = 48;
    return config;
}

ClusterConfig
testCluster()
{
    ClusterConfig config = defaultHeterogeneousCluster();
    config.spec(Tier::HighEnd).server_count = 6;
    config.spec(Tier::HighEnd).memory_per_server_mb = 4096;
    config.spec(Tier::LowEnd).server_count = 9;
    config.spec(Tier::LowEnd).memory_per_server_mb = 3072;
    return config;
}

std::vector<workload::FunctionProfile>
profilesForTrace(const trace::Trace &tr)
{
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::sebs();
    return workload::ProfileMatcher(suite).profilesFor(tr);
}

/** Exact (bitwise for floats) equality of two runs' metrics. */
void
expectMetricsIdentical(const SimulationMetrics &a,
                       const SimulationMetrics &b)
{
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_no_container, b.cold_no_container);
    EXPECT_EQ(a.cold_all_busy, b.cold_all_busy);
    EXPECT_EQ(a.sum_service_ms, b.sum_service_ms);
    EXPECT_EQ(a.sum_wait_ms, b.sum_wait_ms);
    EXPECT_EQ(a.sum_cold_ms, b.sum_cold_ms);
    EXPECT_EQ(a.sum_exec_ms, b.sum_exec_ms);
    EXPECT_EQ(a.sum_overhead_ms, b.sum_overhead_ms);
    EXPECT_EQ(a.service_times_ms, b.service_times_ms);
    EXPECT_EQ(a.service_times_high_ms, b.service_times_high_ms);
    EXPECT_EQ(a.service_times_low_ms, b.service_times_low_ms);
    ASSERT_EQ(a.per_function.size(), b.per_function.size());
    for (std::size_t fn = 0; fn < a.per_function.size(); ++fn) {
        EXPECT_EQ(a.per_function[fn].invocations,
                  b.per_function[fn].invocations);
        EXPECT_EQ(a.per_function[fn].cold_starts,
                  b.per_function[fn].cold_starts);
        EXPECT_EQ(a.per_function[fn].sum_service_ms,
                  b.per_function[fn].sum_service_ms);
    }
    for (int t = 0; t < kNumTiers; ++t) {
        EXPECT_EQ(a.keep_alive[t].successful_cost,
                  b.keep_alive[t].successful_cost);
        EXPECT_EQ(a.keep_alive[t].wasteful_cost,
                  b.keep_alive[t].wasteful_cost);
        EXPECT_EQ(a.keep_alive[t].wasted_mb_ms,
                  b.keep_alive[t].wasted_mb_ms);
    }
}

/** Pull every window of @p source into owned records, in order. */
std::vector<std::vector<ArrivalRecord>>
drainWindows(TraceSource &source)
{
    source.beginRun();
    std::vector<std::vector<ArrivalRecord>> windows;
    for (std::size_t iv = 0; iv < source.numIntervals(); ++iv) {
        const ArrivalWindow window =
            source.intervalWindow(static_cast<IntervalIndex>(iv));
        windows.emplace_back(window.data, window.data + window.size);
    }
    return windows;
}

void
expectWindowsIdentical(
    const std::vector<std::vector<ArrivalRecord>> &a,
    const std::vector<std::vector<ArrivalRecord>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t iv = 0; iv < a.size(); ++iv) {
        ASSERT_EQ(a[iv].size(), b[iv].size()) << "interval " << iv;
        for (std::size_t r = 0; r < a[iv].size(); ++r) {
            EXPECT_EQ(a[iv][r].time, b[iv][r].time)
                << "interval " << iv << " record " << r;
            EXPECT_EQ(a[iv][r].rank, b[iv][r].rank)
                << "interval " << iv << " record " << r;
            EXPECT_EQ(a[iv][r].fn, b[iv][r].fn)
                << "interval " << iv << " record " << r;
        }
    }
}

// ------------------------------------------------- window byte-identity

TEST(TraceSourceTest, StreamedWindowsMatchMaterialized)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    MaterializedTraceSource materialized(tr, SimulatorOptions{}.seed);

    trace::SyntheticRowStream rows(config);
    StreamingWorkloadSource streamed(rows);

    EXPECT_EQ(streamed.numFunctions(), materialized.numFunctions());
    EXPECT_EQ(streamed.numIntervals(), materialized.numIntervals());
    EXPECT_EQ(streamed.intervalMs(), materialized.intervalMs());
    EXPECT_EQ(streamed.totalArrivals(), materialized.totalArrivals());
    EXPECT_EQ(streamed.maxIntervalArrivals(),
              materialized.maxIntervalArrivals());

    expectWindowsIdentical(drainWindows(streamed),
                           drainWindows(materialized));
}

TEST(TraceSourceTest, ForcedSpillWindowsIdentical)
{
    const trace::SyntheticConfig config = smallConfig();

    trace::SyntheticRowStream rows_a(config);
    StreamingWorkloadSource in_memory(rows_a);

    StreamingSourceOptions tiny;
    tiny.chunk_records = 64;
    tiny.read_records = 16;
    trace::SyntheticRowStream rows_b(config);
    StreamingWorkloadSource spilled(rows_b, tiny);

    // The tiny chunk must actually exercise the external path.
    EXPECT_GT(spilled.spillRuns(), 0u);
    EXPECT_GT(spilled.spilledBytes(), 0u);

    expectWindowsIdentical(drainWindows(in_memory),
                           drainWindows(spilled));
}

TEST(TraceSourceTest, BeginRunRewindsStreamedSource)
{
    StreamingSourceOptions tiny;
    tiny.chunk_records = 64;
    tiny.read_records = 16;
    trace::SyntheticRowStream rows(smallConfig());
    StreamingWorkloadSource source(rows, tiny);

    const auto first = drainWindows(source);
    const auto second = drainWindows(source);
    expectWindowsIdentical(first, second);
}

// -------------------------------------------- end-to-end byte-identity

TEST(TraceSourceTest, StreamedRunMatchesMaterializedRun)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const std::vector<workload::FunctionProfile> profiles =
        profilesForTrace(tr);
    const ClusterConfig cluster = testCluster();

    for (const char *scheme : {"openwhisk", "wild", "icebreaker"}) {
        std::unique_ptr<Policy> mat_policy =
            harness::makePolicyByName(scheme);
        const SimulationMetrics reference = runSimulation(
            tr, profiles, cluster, *mat_policy, {});

        StreamingSourceOptions tiny; // force the spill path too
        tiny.chunk_records = 64;
        trace::SyntheticRowStream rows(config);
        StreamingWorkloadSource source(rows, tiny);
        std::unique_ptr<Policy> stream_policy =
            harness::makePolicyByName(scheme);
        const SimulationMetrics streamed = runSimulation(
            source, profiles, cluster, *stream_policy, {});

        SCOPED_TRACE(scheme);
        expectMetricsIdentical(reference, streamed);
    }
}

TEST(TraceSourceTest, MatchedStreamedProfilesAgreeWithTracePath)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    trace::SyntheticRowStream rows(config);
    StreamingWorkloadSource source(rows);

    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::sebs();
    const workload::ProfileMatcher matcher(suite);
    const auto from_trace = matcher.profilesFor(tr);
    const auto from_stream = matchStreamedProfiles(source, matcher);

    ASSERT_EQ(from_trace.size(), from_stream.size());
    for (std::size_t fn = 0; fn < from_trace.size(); ++fn) {
        EXPECT_EQ(from_trace[fn].name, from_stream[fn].name);
        EXPECT_EQ(from_trace[fn].memory_mb, from_stream[fn].memory_mb);
        EXPECT_EQ(from_trace[fn].exec_ms, from_stream[fn].exec_ms);
        EXPECT_EQ(from_trace[fn].cold_start_ms,
                  from_stream[fn].cold_start_ms);
    }
}

TEST(TraceSourceDeathTest, OraclePolicyNeedsMaterializedTrace)
{
    trace::SyntheticRowStream rows(smallConfig());
    StreamingWorkloadSource source(rows);
    const std::vector<workload::FunctionProfile> profiles =
        matchStreamedProfiles(
            source, workload::ProfileMatcher(
                        workload::BenchmarkSuite::sebs()));
    std::unique_ptr<Policy> oracle = harness::makePolicyByName("oracle");
    EXPECT_EXIT((void)runSimulation(source, profiles, testCluster(),
                                    *oracle, {}),
                ::testing::ExitedWithCode(1), "materialized trace");
}

// ------------------------------------------------ CSV golden identity

TEST(TraceSourceTest, CsvStreamMatchesMaterializedLoader)
{
    // The fixture CSV is a serialized small synthetic trace: the
    // loader path materializes it, the stream path never does; both
    // must produce identical runs in the classic AND sharded engines.
    trace::SyntheticConfig config = smallConfig();
    config.num_functions = 24;
    const trace::Trace original =
        trace::SyntheticTraceGenerator(config).generate();
    std::ostringstream csv;
    trace::writeAzureCsv(csv, original);

    std::istringstream loader_in(csv.str());
    const trace::Trace loaded = trace::loadAzureCsv(loader_in);
    const std::vector<workload::FunctionProfile> profiles =
        profilesForTrace(loaded);
    const ClusterConfig cluster = testCluster();

    for (std::size_t shards : {std::size_t{0}, std::size_t{2}}) {
        policies::OpenWhiskPolicy mat_policy;
        SimulatorOptions options;
        options.shards = shards;
        const SimulationMetrics reference = runSimulation(
            loaded, profiles, cluster, mat_policy, options);

        std::istringstream stream_in(csv.str());
        trace::AzureCsvRowStream rows(stream_in);
        StreamingSourceOptions tiny;
        tiny.chunk_records = 32;
        StreamingWorkloadSource source(rows, tiny);
        EXPECT_GT(source.spillRuns(), 0u);
        policies::OpenWhiskPolicy stream_policy;
        const SimulationMetrics streamed = runSimulation(
            source, profiles, cluster, stream_policy, options);

        SCOPED_TRACE("shards=" + std::to_string(shards));
        expectMetricsIdentical(reference, streamed);
    }
}

TEST(AzureCsvStreamDeathTest, ReportsLineAndColumnOfBadCount)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1,m2\n"
        "a,256,900,1,2\n"
        "b,256,900,-4,1\n");
    trace::AzureCsvRowStream rows(in);
    trace::FunctionRow row;
    ASSERT_TRUE(rows.next(row));
    EXPECT_EXIT((void)rows.next(row), ::testing::ExitedWithCode(1),
                "line 3, column 4.*negative");
}

TEST(AzureCsvStreamDeathTest, ReportsLineOfShortRow)
{
    std::istringstream in(
        "name,memory_mb,avg_exec_ms,m1,m2\n"
        "a,256,900,1,2\n"
        "b,256,900,1\n");
    trace::AzureCsvRowStream rows(in);
    trace::FunctionRow row;
    ASSERT_TRUE(rows.next(row));
    EXPECT_EXIT((void)rows.next(row), ::testing::ExitedWithCode(1),
                "line 3.*minute columns");
}

// --------------------------------------- sharded + threaded identity
// (ShardStream* runs under the CI TSan job's Shard* filter: the cell
// pool's worker threads and the runner-style outer threads both race
// through the streamed window scatter here.)

TEST(ShardStreamTest, ShardedStreamedMatchesShardedMaterialized)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const std::vector<workload::FunctionProfile> profiles =
        profilesForTrace(tr);
    const ClusterConfig cluster = testCluster();

    for (std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        core::IceBreakerPolicy mat_policy;
        SimulatorOptions options;
        options.shards = workers;
        const SimulationMetrics reference = runSimulation(
            tr, profiles, cluster, mat_policy, options);

        StreamingSourceOptions tiny;
        tiny.chunk_records = 64;
        trace::SyntheticRowStream rows(config);
        StreamingWorkloadSource source(rows, tiny);
        core::IceBreakerPolicy stream_policy;
        const SimulationMetrics streamed = runSimulation(
            source, profiles, cluster, stream_policy, options);

        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectMetricsIdentical(reference, streamed);
    }
}

TEST(ShardStreamTest, ConcurrentStreamedRunsAgree)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const std::vector<workload::FunctionProfile> profiles =
        profilesForTrace(tr);
    const ClusterConfig cluster = testCluster();

    core::IceBreakerPolicy reference_policy;
    SimulatorOptions options;
    options.shards = 2;
    const SimulationMetrics reference = runSimulation(
        tr, profiles, cluster, reference_policy, options);

    // Each outer thread owns its own source and policy (the runner's
    // usage pattern); the sharded cell pool runs underneath each.
    std::vector<SimulationMetrics> results(3);
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < results.size(); ++t) {
        pool.emplace_back([&, t] {
            trace::SyntheticRowStream rows(config);
            StreamingWorkloadSource source(rows);
            core::IceBreakerPolicy policy;
            SimulatorOptions thread_options;
            thread_options.shards = 2;
            results[t] = runSimulation(source, profiles, cluster,
                                       policy, thread_options);
        });
    }
    for (std::thread &worker : pool)
        worker.join();
    for (std::size_t t = 0; t < results.size(); ++t) {
        SCOPED_TRACE("thread " + std::to_string(t));
        expectMetricsIdentical(reference, results[t]);
    }
}

// ----------------------------------------------- max-cells shard plan

TEST(ShardStreamTest, MaxCellsClampsThePlan)
{
    ClusterConfig cluster = defaultHeterogeneousCluster();
    cluster.spec(Tier::HighEnd).server_count = 32;
    cluster.spec(Tier::LowEnd).server_count = 32;

    // Auto ceiling is kDefaultCells; max_cells lowers it.
    EXPECT_EQ(ShardPlan::build(1000, cluster).num_cells,
              ShardPlan::kDefaultCells);
    EXPECT_EQ(ShardPlan::build(1000, cluster, 0, 4).num_cells, 4u);
    // Geometry still clamps below the ceiling: few functions...
    EXPECT_EQ(ShardPlan::build(3, cluster, 0, 8).num_cells, 3u);
    // ...or a small populated tier.
    cluster.spec(Tier::LowEnd).server_count = 2;
    EXPECT_EQ(ShardPlan::build(1000, cluster, 0, 8).num_cells, 2u);
}

TEST(ShardStreamTest, MaxCellsKeepsWorkerCountInvariance)
{
    const trace::SyntheticConfig config = smallConfig();
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const std::vector<workload::FunctionProfile> profiles =
        profilesForTrace(tr);
    const ClusterConfig cluster = testCluster();

    // A fixed cell partition (here capped at 3) must produce
    // identical results at every worker count.
    SimulationMetrics reference;
    for (std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        core::IceBreakerPolicy policy;
        SimulatorOptions options;
        options.shards = workers;
        options.max_cells = 3;
        const SimulationMetrics metrics =
            runSimulation(tr, profiles, cluster, policy, options);
        if (workers == 1) {
            reference = metrics;
            continue;
        }
        SCOPED_TRACE("workers=" + std::to_string(workers));
        expectMetricsIdentical(reference, metrics);
    }
}

// ------------------------------------------------- SeBS profile pool

TEST(SebsSuiteTest, CategoriesCoverThePool)
{
    std::size_t total = 0;
    for (std::size_t c = 0; c < workload::kNumSebsCategories; ++c) {
        const auto category = static_cast<workload::SebsCategory>(c);
        const auto profiles = workload::sebsCategoryProfiles(category);
        ASSERT_FALSE(profiles.empty());
        const std::string prefix =
            std::string("sebs/") + workload::sebsCategoryName(category);
        for (const workload::FunctionProfile &p : profiles) {
            EXPECT_EQ(p.name.rfind(prefix, 0), 0u)
                << p.name << " not under " << prefix;
            EXPECT_GT(p.memory_mb, 0);
        }
        total += profiles.size();
    }
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::sebs();
    EXPECT_EQ(suite.size(), total);

    // The pool must keep the paper's headline property alive: a
    // meaningful fraction of functions serve a warm start on the
    // low-end tier faster than a cold start on the high-end tier.
    EXPECT_GT(suite.fractionWarmLowBeatsColdHigh(), 0.4);
    EXPECT_LT(suite.fractionWarmLowBeatsColdHigh(), 1.0);
}

TEST(SebsSuiteTest, AzureScalePresetSpansTheSebsPool)
{
    // The Azure-scale preset's hint ranges must reach every SeBS
    // category, so the matcher spreads functions across the pool.
    const trace::SyntheticConfig config = trace::azureScaleConfig(512, 60);
    const workload::BenchmarkSuite suite =
        workload::BenchmarkSuite::sebs();
    const workload::ProfileMatcher matcher(
        suite, workload::MatchMode::ProfileOnly);
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();

    std::vector<bool> hit(suite.size(), false);
    for (const auto &fn : tr.functions())
        hit[matcher.matchIndex(
            fn.memory_mb > 0 ? fn.memory_mb : 256,
            fn.avg_exec_ms > 0 ? fn.avg_exec_ms : 1000)] = true;
    std::size_t distinct = 0;
    for (bool h : hit)
        distinct += h ? 1 : 0;
    // All four categories (11 profiles) should be represented.
    EXPECT_GE(distinct, 8u);
}

} // namespace
