/**
 * @file
 * Tests for the simulator's building blocks: event queue, cluster
 * configurations (budget-constant sweep) and metric accounting.
 */

#include <gtest/gtest.h>

#include "sim/cluster_config.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

// ----------------------------------------------------------- EventQueue

TEST(EventQueueTest, PopsInTimeOrder)
{
    EventQueue queue;
    Event e;
    e.type = EventType::IntervalTick;
    e.time = 30;
    queue.push(e);
    e.time = 10;
    queue.push(e);
    e.time = 20;
    queue.push(e);

    EXPECT_EQ(queue.pop()->time, 10);
    EXPECT_EQ(queue.pop()->time, 20);
    EXPECT_EQ(queue.pop()->time, 30);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueueTest, TiesBreakByInsertionOrder)
{
    EventQueue queue;
    Event e;
    e.time = 5;
    e.type = EventType::InvocationArrival;
    e.fn = 1;
    queue.push(e);
    e.fn = 2;
    queue.push(e);
    e.fn = 3;
    queue.push(e);
    EXPECT_EQ(queue.pop()->fn, 1u);
    EXPECT_EQ(queue.pop()->fn, 2u);
    EXPECT_EQ(queue.pop()->fn, 3u);
}

TEST(EventQueueTest, PayloadsRoundTripPerType)
{
    EventQueue queue;

    Event expiry;
    expiry.time = 3;
    expiry.type = EventType::ContainerExpiry;
    expiry.container = 0x1'0000'0002ull;
    expiry.token = 42;
    queue.push(expiry);

    Event prewarm;
    prewarm.time = 1;
    prewarm.type = EventType::PrewarmStart;
    prewarm.fn = 7;
    prewarm.tier = Tier::LowEnd;
    prewarm.expiry = 9000;
    queue.push(prewarm);

    Event done;
    done.time = 2;
    done.type = EventType::ExecutionComplete;
    done.container = 0x2'0000'0005ull;
    done.fn = 11;
    queue.push(done);

    auto first = queue.pop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, EventType::PrewarmStart);
    EXPECT_EQ(first->fn, 7u);
    EXPECT_EQ(first->tier, Tier::LowEnd);
    EXPECT_EQ(first->expiry, 9000);

    auto second = queue.pop();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, EventType::ExecutionComplete);
    EXPECT_EQ(second->container, 0x2'0000'0005ull);
    EXPECT_EQ(second->fn, 11u);

    auto third = queue.pop();
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->type, EventType::ContainerExpiry);
    EXPECT_EQ(third->container, 0x1'0000'0002ull);
    EXPECT_EQ(third->token, 42u);

    EXPECT_FALSE(queue.pop().has_value());
}

TEST(EventQueueTest, ReservedSeqBlockOrdersBetweenPushes)
{
    EventQueue queue;
    Event before;
    before.time = 10;
    before.type = EventType::InvocationArrival;
    before.fn = 1;
    queue.push(before); // seq 0

    const std::uint64_t base = queue.reserveSeqs(3); // seqs 1..3
    EXPECT_EQ(base, 1u);

    Event after;
    after.time = 10;
    after.type = EventType::InvocationArrival;
    after.fn = 2;
    queue.push(after); // seq 4

    // The heap front's key lets a caller interleave externally-held
    // work carrying the reserved seqs.
    auto key = queue.peekKey();
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->time, 10);
    EXPECT_EQ(key->seq, 0u);

    EXPECT_EQ(queue.pop()->fn, 1u);
    key = queue.peekKey();
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(key->seq, 4u); // reserved seqs 1..3 were never pushed
    EXPECT_EQ(queue.pop()->fn, 2u);
}

TEST(EventQueueTest, ManyEventsPopSortedAndRecyclePayloads)
{
    EventQueue queue;
    queue.reserve(64);
    // Deterministic scramble of times; repeated fill/drain cycles
    // exercise payload recycling through the free list.
    for (int cycle = 0; cycle < 3; ++cycle) {
        for (int i = 0; i < 50; ++i) {
            Event e;
            e.time = (i * 37) % 50;
            e.type = EventType::InvocationArrival;
            e.fn = static_cast<FunctionId>(i);
            queue.push(e);
        }
        TimeMs last = -1;
        std::size_t popped = 0;
        while (auto e = queue.pop()) {
            EXPECT_GE(e->time, last);
            last = e->time;
            ++popped;
        }
        EXPECT_EQ(popped, 50u);
    }
    EXPECT_GE(queue.peakSize(), 50u);
}

TEST(EventQueueTest, PeekDoesNotPop)
{
    EventQueue queue;
    Event e;
    e.time = 7;
    queue.push(e);
    EXPECT_EQ(queue.peekTime(), 7);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_FALSE(queue.empty());
    queue.pop();
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.peekTime().has_value());
}

// -------------------------------------------------------- ClusterConfig

TEST(ClusterConfigTest, DefaultClusterMatchesPaper)
{
    const ClusterConfig config = defaultHeterogeneousCluster();
    EXPECT_EQ(config.spec(Tier::HighEnd).server_count, 10u);
    EXPECT_EQ(config.spec(Tier::LowEnd).server_count, 18u);
    EXPECT_NEAR(config.spec(Tier::HighEnd).dollars_per_gb_hour, 0.01475,
                1e-9);
    EXPECT_NEAR(config.spec(Tier::LowEnd).dollars_per_gb_hour, 0.0084,
                1e-9);
    EXPECT_FALSE(config.homogeneous());
    // Equal capital split within rounding of whole servers.
    const double high_capital = 10.0 * 1.75;
    EXPECT_NEAR(high_capital, 18.0, 0.5);
}

TEST(ClusterConfigTest, LowEndGivesMoreMemoryPerDollar)
{
    // The heterogeneity argument requires cheap servers to carry more
    // aggregate memory per capital unit.
    const ClusterConfig config = defaultHeterogeneousCluster();
    const TierSpec &high = config.spec(Tier::HighEnd);
    const TierSpec &low = config.spec(Tier::LowEnd);
    const double high_mb_per_cost =
        static_cast<double>(high.memory_per_server_mb) /
        high.capital_cost;
    const double low_mb_per_cost =
        static_cast<double>(low.memory_per_server_mb) / low.capital_cost;
    EXPECT_GT(low_mb_per_cost, high_mb_per_cost);
}

TEST(ClusterConfigTest, HomogeneousEndpoints)
{
    EXPECT_TRUE(homogeneousHighEndCluster().homogeneous());
    EXPECT_TRUE(homogeneousLowEndCluster().homogeneous());
    EXPECT_EQ(homogeneousHighEndCluster().totalServers(), 20u);
    EXPECT_EQ(homogeneousLowEndCluster().totalServers(), 35u);
}

TEST(ClusterConfigTest, SweepHasElevenBudgetConstantConfigs)
{
    const std::vector<ClusterConfig> sweep = budgetConstantSweep();
    ASSERT_EQ(sweep.size(), 11u);
    // Endpoints match the paper's homogeneous cases.
    EXPECT_EQ(sweep.front().spec(Tier::HighEnd).server_count, 20u);
    EXPECT_EQ(sweep.front().spec(Tier::LowEnd).server_count, 0u);
    EXPECT_EQ(sweep.back().spec(Tier::HighEnd).server_count, 0u);
    EXPECT_EQ(sweep.back().spec(Tier::LowEnd).server_count, 35u);
    // Capital cost constant to within one low-end server.
    const double reference = sweep.front().totalCapitalCost();
    for (const auto &config : sweep)
        EXPECT_NEAR(config.totalCapitalCost(), reference, 1.0)
            << config.name;
    // The default 10H+18L appears in the sweep.
    bool found_default = false;
    for (const auto &config : sweep)
        if (config.spec(Tier::HighEnd).server_count == 10 &&
            config.spec(Tier::LowEnd).server_count == 18)
            found_default = true;
    EXPECT_TRUE(found_default);
}

TEST(ClusterConfigTest, CostRatioClusters)
{
    for (double ratio : {1.23, 1.5, 1.8, 2.4}) {
        const ClusterConfig config = clusterWithCostRatio(ratio);
        const TierSpec &high = config.spec(Tier::HighEnd);
        const TierSpec &low = config.spec(Tier::LowEnd);
        EXPECT_NEAR(high.dollars_per_gb_hour / low.dollars_per_gb_hour,
                    ratio, 1e-9);
        EXPECT_GT(high.server_count, 0u);
        EXPECT_GT(low.server_count, 0u);
        // Cheaper high-end servers -> more of them at equal budget.
        if (ratio < 1.5)
            EXPECT_GT(high.server_count, 10u);
    }
}

TEST(ClusterConfigTest, TotalMemoryAggregation)
{
    const ClusterConfig config = defaultHeterogeneousCluster();
    const MemoryMb expected =
        10 * config.spec(Tier::HighEnd).memory_per_server_mb +
        18 * config.spec(Tier::LowEnd).memory_per_server_mb;
    EXPECT_EQ(config.totalMemoryMb(), expected);
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, InvocationAccounting)
{
    MetricsCollector collector(2);
    InvocationOutcome outcome;
    outcome.fn = 0;
    outcome.tier = Tier::HighEnd;
    outcome.cold = true;
    outcome.wait_ms = 100;
    outcome.cold_start_ms = 900;
    outcome.exec_ms = 1000;
    outcome.overhead_ms = 30;
    collector.recordInvocation(outcome);

    outcome.fn = 1;
    outcome.cold = false;
    outcome.tier = Tier::LowEnd;
    outcome.wait_ms = 0;
    outcome.cold_start_ms = 0;
    outcome.exec_ms = 500;
    outcome.overhead_ms = 0;
    collector.recordInvocation(outcome);

    const SimulationMetrics m = collector.take();
    EXPECT_EQ(m.invocations, 2u);
    EXPECT_EQ(m.cold_starts, 1u);
    EXPECT_EQ(m.warm_starts, 1u);
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), (2030.0 + 500.0) / 2.0);
    EXPECT_DOUBLE_EQ(m.meanWaitMs(), 50.0);
    EXPECT_DOUBLE_EQ(m.warmStartFraction(), 0.5);
    ASSERT_EQ(m.service_times_high_ms.size(), 1u);
    ASSERT_EQ(m.service_times_low_ms.size(), 1u);
    EXPECT_FLOAT_EQ(m.service_times_high_ms[0], 2030.0f);
    EXPECT_EQ(m.per_function[0].cold_starts, 1u);
    EXPECT_EQ(m.per_function[1].warm_starts, 1u);
}

TEST(MetricsTest, KeepAliveSplitsSuccessfulAndWasteful)
{
    MetricsCollector collector(1);
    const double rate = 1e-9;
    collector.recordKeepAlive(Tier::HighEnd, 0, 1000, 60'000, true,
                              rate);
    collector.recordKeepAlive(Tier::HighEnd, 0, 1000, 30'000, false,
                              rate);
    collector.recordKeepAlive(Tier::LowEnd, 0, 500, 10'000, false, rate);
    const SimulationMetrics m = collector.take();

    const TierKeepAlive &high = m.tierKeepAlive(Tier::HighEnd);
    EXPECT_NEAR(high.successful_cost, 1000.0 * 60'000 * rate, 1e-15);
    EXPECT_NEAR(high.wasteful_cost, 1000.0 * 30'000 * rate, 1e-15);
    EXPECT_NEAR(high.wasted_mb_ms, 1000.0 * 30'000, 1e-9);
    const TierKeepAlive &low = m.tierKeepAlive(Tier::LowEnd);
    EXPECT_NEAR(low.wasteful_cost, 500.0 * 10'000 * rate, 1e-15);
    EXPECT_NEAR(m.totalKeepAliveCost(),
                high.totalCost() + low.totalCost(), 1e-15);
    EXPECT_NEAR(m.per_function[0].keep_alive_cost,
                m.totalKeepAliveCost(), 1e-15);
}

TEST(MetricsTest, ZeroIdleIsIgnored)
{
    MetricsCollector collector(1);
    collector.recordKeepAlive(Tier::HighEnd, 0, 1000, 0, false, 1.0);
    const SimulationMetrics m = collector.take();
    EXPECT_DOUBLE_EQ(m.totalKeepAliveCost(), 0.0);
}

TEST(MetricsTest, ColdCauseCounters)
{
    MetricsCollector collector(1);
    collector.recordColdCause(true, true);
    collector.recordColdCause(false, true);
    collector.recordColdCause(false, false);
    collector.recordColdCause(false, false);
    const SimulationMetrics m = collector.take();
    EXPECT_EQ(m.cold_setup_attach, 1u);
    EXPECT_EQ(m.cold_all_busy, 1u);
    EXPECT_EQ(m.cold_no_container, 2u);
}

TEST(MetricsMergeTest, ColdCauseSplitAdds)
{
    MetricsCollector a(1);
    a.recordColdCause(false, false); // no container
    a.recordColdCause(false, true);  // all busy
    MetricsCollector b(1);
    b.recordColdCause(true, true);   // setup attach
    b.recordColdCause(false, false); // no container
    b.recordColdCause(false, true);  // all busy

    SimulationMetrics merged = a.take();
    merged.merge(b.take());
    EXPECT_EQ(merged.cold_no_container, 2u);
    EXPECT_EQ(merged.cold_all_busy, 2u);
    EXPECT_EQ(merged.cold_setup_attach, 1u);
    // The split partitions exactly the causes recorded across runs.
    EXPECT_EQ(merged.cold_no_container + merged.cold_all_busy +
                  merged.cold_setup_attach,
              5u);
}

TEST(MetricsMergeTest, EventLoopCountsAddPeaksMax)
{
    EventLoopStats a;
    a.popped[0] = 10;
    a.popped[3] = 4;
    a.stale_expiry_events = 2;
    a.stale_evict_entries = 7;
    a.eviction_victims_examined = 5;
    a.peak_live_containers = 100;
    a.peak_pending_events = 3;
    a.peak_bucket_events = 9;
    a.peak_evict_entries = 40;
    a.peak_wait_queue = 1;

    EventLoopStats b;
    b.popped[0] = 1;
    b.popped[5] = 6;
    b.stale_expiry_events = 1;
    b.stale_evict_entries = 0;
    b.eviction_victims_examined = 2;
    b.peak_live_containers = 60;
    b.peak_pending_events = 8;
    b.peak_bucket_events = 2;
    b.peak_evict_entries = 41;
    b.peak_wait_queue = 0;

    a.merge(b);
    // Work counters add across replicates ...
    EXPECT_EQ(a.popped[0], 11u);
    EXPECT_EQ(a.popped[3], 4u);
    EXPECT_EQ(a.popped[5], 6u);
    EXPECT_EQ(a.totalPopped(), 21u);
    EXPECT_EQ(a.stale_expiry_events, 3u);
    EXPECT_EQ(a.stale_evict_entries, 7u);
    EXPECT_EQ(a.eviction_victims_examined, 7u);
    // ... while capacity peaks take the max, never the sum.
    EXPECT_EQ(a.peak_live_containers, 100u);
    EXPECT_EQ(a.peak_pending_events, 8u);
    EXPECT_EQ(a.peak_bucket_events, 9u);
    EXPECT_EQ(a.peak_evict_entries, 41u);
    EXPECT_EQ(a.peak_wait_queue, 1u);
}

} // namespace
