/**
 * @file
 * Tests for the batched SoA forecasting engine: the ForecastPool and
 * its block kernels against the scalar FftPredictor golden reference.
 *
 * The central contract is bitwise: in exact mode (the policy default)
 * every forecast value the pool produces must match
 * FftPredictor::forecastHorizon bit for bit, across power-of-two and
 * Bluestein window lengths, during warm-up and steady state, for any
 * thread count. Fast mode is held to a 1e-9 agreement budget.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "math/fft.hh"
#include "predictors/fft_predictor.hh"
#include "predictors/forecast_kernels.hh"
#include "predictors/forecast_pool.hh"

namespace
{

using namespace iceb;
using namespace iceb::predictors;

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/**
 * Deterministic synthetic workload: periodic structure plus a
 * hash-scrambled irregular component, distinct per function. Always
 * non-negative; occasionally exactly zero (exercising the predictor's
 * max(0,.) clamp inputs without silencing whole windows).
 */
double
signalAt(std::size_t fn, std::size_t t)
{
    const double phase = static_cast<double>(fn % 17) * 0.37;
    double v = 4.0 + 3.0 * std::sin(0.23 * static_cast<double>(t) + phase) +
        1.5 * std::cos(0.071 * static_cast<double>(t));
    std::uint64_t h = (fn + 1) * 0x9e3779b97f4a7c15ull + t * 0xbf58476d1ce4e5b9ull;
    h ^= h >> 29;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 32;
    v += static_cast<double>(h % 1000) / 250.0;
    if (h % 13 == 0)
        return 0.0;
    return v;
}

void
expectHorizonBitsEqual(const double *pool_out,
                       const std::vector<double> &scalar_out,
                       std::size_t fn, std::size_t t)
{
    for (std::size_t step = 0; step < scalar_out.size(); ++step) {
        ASSERT_EQ(bits(pool_out[step]), bits(scalar_out[step]))
            << "fn=" << fn << " t=" << t << " step=" << step
            << " pool=" << pool_out[step]
            << " scalar=" << scalar_out[step];
    }
}

/**
 * Roll `intervals` observation/forecast rounds over `functions`
 * functions with the given config, asserting the pool matches the
 * scalar predictor bit for bit at every round (including warm-up,
 * where lanes take the scalar mirror path).
 */
void
rollAndCompare(const FftPredictorConfig &config, std::size_t functions,
               std::size_t intervals, std::size_t horizon,
               std::size_t threads = 1)
{
    ForecastPoolOptions opts;
    opts.threads = threads;
    ForecastPool pool(opts);
    std::vector<FftPredictor> scalar;
    scalar.reserve(functions);
    for (std::size_t fn = 0; fn < functions; ++fn) {
        EXPECT_EQ(pool.addFunction(config), fn);
        scalar.emplace_back(config);
    }

    std::vector<double> golden;
    for (std::size_t t = 0; t < intervals; ++t) {
        for (std::size_t fn = 0; fn < functions; ++fn) {
            const double v = signalAt(fn, t);
            pool.observe(fn, v);
            scalar[fn].observe(v);
        }
        pool.forecastAll(horizon);
        for (std::size_t fn = 0; fn < functions; ++fn) {
            scalar[fn].forecastHorizon(horizon, golden);
            expectHorizonBitsEqual(pool.forecast(fn), golden, fn, t);
        }
    }
}

// --------------------------------------------------- exact equivalence

TEST(ForecastPoolTest, BitIdenticalPow2Windows)
{
    for (const std::size_t window : {8u, 16u, 32u, 64u, 128u}) {
        FftPredictorConfig config;
        config.window = window;
        // Cover warm-up, the first full window, and ring wrap-around.
        rollAndCompare(config, 5, window + window / 2 + 3, 11);
    }
}

TEST(ForecastPoolTest, BitIdenticalBluesteinWindows)
{
    for (const std::size_t window : {12u, 24u, 60u, 120u}) {
        FftPredictorConfig config;
        config.window = window;
        rollAndCompare(config, 5, window + window / 2 + 3, 11);
    }
}

TEST(ForecastPoolTest, BitIdenticalOddWindows)
{
    // Odd lengths take forwardReal's full-complex fallback.
    for (const std::size_t window : {9u, 15u, 21u}) {
        FftPredictorConfig config;
        config.window = window;
        config.min_samples = 4;
        rollAndCompare(config, 4, 2 * window + 3, 7);
    }
}

TEST(ForecastPoolTest, BitIdenticalBelowBatchThreshold)
{
    // window < 8 never qualifies for the batch kernels: the scalar
    // mirror must still match (including the min_samples mean path).
    FftPredictorConfig config;
    config.window = 6;
    config.min_samples = 4;
    rollAndCompare(config, 3, 15, 5);
}

TEST(ForecastPoolTest, BitIdenticalMoreLanesThanOneBlock)
{
    // > kLanes functions forces multiple blocks incl. a partial tail.
    FftPredictorConfig config;
    config.window = 16;
    rollAndCompare(config, kernels::kLanes * 2 + 3, 40, 11);
}

TEST(ForecastPoolTest, BitIdenticalIncrementalSpectrumDelegates)
{
    FftPredictorConfig config;
    config.window = 32;
    config.incremental_spectrum = true;
    config.resync_every = 16;
    rollAndCompare(config, 4, 80, 11);
}

TEST(ForecastPoolTest, SilentFunctionForecastsZeros)
{
    FftPredictorConfig config;
    config.window = 16;
    ForecastPool pool;
    const std::size_t slot = pool.addFunction(config);
    for (std::size_t t = 0; t < 40; ++t)
        pool.observe(slot, 0.0);
    pool.forecastAll(6);
    for (std::size_t step = 0; step < 6; ++step)
        EXPECT_EQ(bits(pool.forecast(slot)[step]), bits(0.0));
}

TEST(ForecastPoolTest, MixedConfigPools)
{
    // Functions with different configs land in different groups but
    // one forecastAll covers them all, each bit-identical to its own
    // scalar reference.
    std::vector<FftPredictorConfig> configs(4);
    configs[0].window = 16;
    configs[1].window = 60;
    configs[2].window = 16;
    configs[2].harmonics = 3;
    configs[3].window = 120;

    ForecastPool pool;
    std::vector<FftPredictor> scalar;
    const std::size_t functions = 12;
    for (std::size_t fn = 0; fn < functions; ++fn) {
        const FftPredictorConfig &config = configs[fn % configs.size()];
        EXPECT_EQ(pool.addFunction(config), fn);
        scalar.emplace_back(config);
    }
    std::vector<double> golden;
    for (std::size_t t = 0; t < 150; ++t) {
        for (std::size_t fn = 0; fn < functions; ++fn) {
            const double v = signalAt(fn, t);
            pool.observe(fn, v);
            scalar[fn].observe(v);
        }
        pool.forecastAll(11);
        for (std::size_t fn = 0; fn < functions; ++fn) {
            scalar[fn].forecastHorizon(11, golden);
            expectHorizonBitsEqual(pool.forecast(fn), golden, fn, t);
        }
    }
}

// ------------------------------------------------- pool slot lifecycle

TEST(ForecastPoolTest, MidStreamArrivalAndRetirement)
{
    FftPredictorConfig config;
    config.window = 16;
    ForecastPool pool;
    std::vector<std::unique_ptr<FftPredictor>> scalar;
    std::vector<std::size_t> slots;
    for (std::size_t fn = 0; fn < 6; ++fn) {
        slots.push_back(pool.addFunction(config));
        scalar.push_back(std::make_unique<FftPredictor>(config));
    }

    std::vector<double> golden;
    const auto step_all = [&](std::size_t t) {
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (scalar[i] == nullptr)
                continue;
            const double v = signalAt(i, t);
            pool.observe(slots[i], v);
            scalar[i]->observe(v);
        }
        pool.forecastAll(9);
        for (std::size_t i = 0; i < slots.size(); ++i) {
            if (scalar[i] == nullptr)
                continue;
            scalar[i]->forecastHorizon(9, golden);
            expectHorizonBitsEqual(pool.forecast(slots[i]), golden, i, t);
        }
    };

    std::size_t t = 0;
    for (; t < 25; ++t)
        step_all(t);

    // Retire two mid-stream functions...
    pool.removeFunction(slots[1]);
    scalar[1].reset();
    pool.removeFunction(slots[4]);
    scalar[4].reset();
    EXPECT_EQ(pool.size(), 4u);
    for (; t < 40; ++t)
        step_all(t);

    // ...then add new arrivals, which must reuse the freed slots and
    // start from an empty history.
    const std::size_t reused = pool.addFunction(config);
    EXPECT_TRUE(reused == slots[1] || reused == slots[4]);
    slots.push_back(reused);
    scalar.push_back(std::make_unique<FftPredictor>(config));
    const std::size_t reused2 = pool.addFunction(config);
    EXPECT_TRUE(reused2 == slots[1] || reused2 == slots[4]);
    EXPECT_NE(reused2, reused);
    slots.push_back(reused2);
    scalar.push_back(std::make_unique<FftPredictor>(config));
    EXPECT_EQ(pool.size(), 6u);
    for (; t < 70; ++t)
        step_all(t);
}

TEST(ForecastPoolTest, ResetMirrorsScalarReset)
{
    FftPredictorConfig config;
    config.window = 12;
    ForecastPool pool;
    FftPredictor scalar(config);
    const std::size_t slot = pool.addFunction(config);
    std::vector<double> golden;
    for (std::size_t t = 0; t < 30; ++t) {
        const double v = signalAt(0, t);
        pool.observe(slot, v);
        scalar.observe(v);
        if (t == 20) {
            pool.reset(slot);
            scalar.reset();
        }
        pool.forecastAll(5);
        scalar.forecastHorizon(5, golden);
        expectHorizonBitsEqual(pool.forecast(slot), golden, 0, t);
        EXPECT_EQ(pool.sampleCount(slot), scalar.sampleCount());
    }
}

// ------------------------------------------------------------ threads

TEST(ForecastPoolTest, ThreadCountDoesNotChangeBits)
{
    FftPredictorConfig config;
    config.window = 60;
    const std::size_t functions = 37;
    const std::size_t horizon = 11;

    const auto run = [&](std::size_t threads) {
        ForecastPoolOptions opts;
        opts.threads = threads;
        ForecastPool pool(opts);
        for (std::size_t fn = 0; fn < functions; ++fn)
            pool.addFunction(config);
        std::vector<double> out;
        for (std::size_t t = 0; t < 90; ++t) {
            for (std::size_t fn = 0; fn < functions; ++fn)
                pool.observe(fn, signalAt(fn, t));
            pool.forecastAll(horizon);
        }
        for (std::size_t fn = 0; fn < functions; ++fn)
            out.insert(out.end(), pool.forecast(fn),
                       pool.forecast(fn) + horizon);
        return out;
    };

    const std::vector<double> one = run(1);
    const std::vector<double> four = run(4);
    ASSERT_EQ(one.size(), four.size());
    for (std::size_t i = 0; i < one.size(); ++i)
        ASSERT_EQ(bits(one[i]), bits(four[i])) << "i=" << i;
}

TEST(ForecastPoolTest, ThreadedExactModeMatchesScalar)
{
    FftPredictorConfig config;
    config.window = 120;
    rollAndCompare(config, 2 * kernels::kLanes + 1, 140, 11,
                   /*threads=*/4);
}

// ---------------------------------------------------------- fast mode

TEST(ForecastPoolTest, FastModeWithinTolerance)
{
    for (const std::size_t window : {16u, 60u, 120u}) {
        FftPredictorConfig config;
        config.window = window;
        ForecastPoolOptions opts;
        opts.fast_path = true;
        ForecastPool pool(opts);
        FftPredictor scalar(config);
        const std::size_t slot = pool.addFunction(config);
        std::vector<double> golden;
        for (std::size_t t = 0; t < 2 * window; ++t) {
            const double v = signalAt(3, t);
            pool.observe(slot, v);
            scalar.observe(v);
            pool.forecastAll(11);
            scalar.forecastHorizon(11, golden);
            for (std::size_t step = 0; step < golden.size(); ++step) {
                EXPECT_NEAR(pool.forecast(slot)[step], golden[step],
                            1e-9)
                    << "window=" << window << " t=" << t
                    << " step=" << step;
            }
        }
    }
}

// ------------------------------------------------------- FFT kernels

TEST(ForecastKernelsTest, ForwardRealBatchMatchesPlanBitwise)
{
    using kernels::kLanes;
    for (const std::size_t n : {8u, 9u, 12u, 15u, 16u, 60u, 64u, 120u,
                                128u}) {
        const auto plan = math::fftPlanFor(n);
        std::vector<double> in(n * kLanes);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t l = 0; l < kLanes; ++l)
                in[i * kLanes + l] =
                    signalAt(l, i) - 3.0 * std::sin(0.01 * i);

        kernels::BlockContext ctx;
        ctx.plan = plan.get();
        ctx.window = n;
        kernels::BlockScratch scratch;
        scratch.prepare(ctx);
        std::vector<double> out_re((n / 2 + 1) * kLanes);
        std::vector<double> out_im((n / 2 + 1) * kLanes);
        kernels::forwardRealBatch(*plan, in.data(), out_re.data(),
                                  out_im.data(), scratch);

        std::vector<double> lane(n);
        std::vector<math::Complex> spectrum(n);
        math::FftScratch fft_ws;
        for (std::size_t l = 0; l < kLanes; ++l) {
            for (std::size_t i = 0; i < n; ++i)
                lane[i] = in[i * kLanes + l];
            plan->forwardReal(lane.data(), spectrum.data(), fft_ws);
            for (std::size_t k = 0; k <= n / 2; ++k) {
                ASSERT_EQ(bits(out_re[k * kLanes + l]),
                          bits(spectrum[k].real()))
                    << "n=" << n << " lane=" << l << " bin=" << k;
                ASSERT_EQ(bits(out_im[k * kLanes + l]),
                          bits(spectrum[k].imag()))
                    << "n=" << n << " lane=" << l << " bin=" << k;
            }
        }
    }
}

} // namespace
