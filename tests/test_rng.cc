/**
 * @file
 * Unit tests for the deterministic random number generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

namespace
{

using iceb::Rng;

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformMeanConverges)
{
    Rng rng(9);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(10);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all five values hit
}

TEST(RngTest, UniformIntSingleton)
{
    Rng rng(11);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(RngTest, UniformIntNegativeRange)
{
    Rng rng(12);
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.uniformInt(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale)
{
    Rng rng(14);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches)
{
    Rng rng(15);
    for (double mean : {0.5, 3.0, 20.0, 50.0}) {
        const int n = 50000;
        double sum = 0.0;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05)
            << "mean " << mean;
    }
}

TEST(RngTest, PoissonZeroMean)
{
    Rng rng(16);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(2.0);
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, BernoulliProbability)
{
    Rng rng(18);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent)
{
    Rng parent(19);
    Rng child_a = parent.fork(1);
    Rng child_b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (child_a.next() == child_b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic)
{
    Rng p1(20);
    Rng p2(20);
    Rng c1 = p1.fork(5);
    Rng c2 = p2.fork(5);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

TEST(RngTest, SplitMix64KnownProgression)
{
    std::uint64_t s1 = 0;
    std::uint64_t s2 = 0;
    const std::uint64_t a = iceb::splitMix64(s1);
    const std::uint64_t b = iceb::splitMix64(s2);
    EXPECT_EQ(a, b);
    EXPECT_NE(iceb::splitMix64(s1), a); // state advanced
}

/** Seed sweep: core distribution invariants hold for any seed. */
class RngSeedTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngSeedTest, UniformStaysInRangeAndCoversBothHalves)
{
    Rng rng(GetParam());
    int low = 0;
    int high = 0;
    for (int i = 0; i < 2000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        (u < 0.5 ? low : high)++;
    }
    EXPECT_GT(low, 700);
    EXPECT_GT(high, 700);
}

TEST_P(RngSeedTest, GaussianIsSymmetricEnough)
{
    Rng rng(GetParam());
    int negative = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        if (rng.gaussian() < 0.0)
            ++negative;
    EXPECT_NEAR(static_cast<double>(negative) / n, 0.5, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(0ull, 1ull, 42ull,
                                           0xDEADBEEFull,
                                           0xFFFFFFFFFFFFFFFFull));

} // namespace
