/**
 * @file
 * The serving boundary: DecisionEngine transparency (batch ==
 * SimDriver == ReplayDriver, bit for bit), the standalone façade
 * running online schemes with no trace in sight, the oracle being
 * rejected at the boundary, streamed probe export, and engine-wrapped
 * runner grids staying deterministic across thread counts.
 */

#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "core/icebreaker.hh"
#include "harness/experiment.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "obs/histogram.hh"
#include "obs/probes.hh"
#include "obs/recorder.hh"
#include "policies/faascache_policy.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/oracle_policy.hh"
#include "policies/wild_policy.hh"
#include "serve/drivers.hh"
#include "serve/stats_exporter.hh"

namespace
{

using namespace iceb;

// ------------------------------------------------- boundary statics
//
// The observation contract, checked where the compiler can see it: an
// online policy's initialisation context carries no trace handle and
// no arrival schedule, and only the Oracle opts into the privileged
// OfflinePolicy base.

template <typename T, typename = void>
struct HasTraceMember : std::false_type
{
};
template <typename T>
struct HasTraceMember<T, std::void_t<decltype(std::declval<T>().trace)>>
    : std::true_type
{
};

template <typename T, typename = void>
struct HasScheduleMember : std::false_type
{
};
template <typename T>
struct HasScheduleMember<
    T, std::void_t<decltype(std::declval<T>().arrival_schedule)>>
    : std::true_type
{
};

static_assert(!HasTraceMember<sim::SimContext>::value,
              "SimContext must not expose the trace to policies");
static_assert(!HasScheduleMember<sim::SimContext>::value,
              "SimContext must not expose the arrival schedule");
static_assert(!std::is_base_of_v<sim::OfflinePolicy,
                                 policies::OpenWhiskPolicy>,
              "OpenWhisk is an online scheme");
static_assert(!std::is_base_of_v<sim::OfflinePolicy, policies::WildPolicy>,
              "Serverless-in-the-Wild is an online scheme");
static_assert(!std::is_base_of_v<sim::OfflinePolicy,
                                 policies::FaasCachePolicy>,
              "FaasCache is an online scheme");
static_assert(!std::is_base_of_v<sim::OfflinePolicy,
                                 core::IceBreakerPolicy>,
              "IceBreaker is an online scheme");
static_assert(std::is_base_of_v<sim::OfflinePolicy, policies::OraclePolicy>,
              "the Oracle is the one offline scheme");

// --------------------------------------------------------- fixtures

/** Deterministic bursty workload shared by the equivalence tests. */
harness::Workload
serveWorkload(std::size_t functions = 24, std::size_t intervals = 120)
{
    trace::SyntheticConfig config;
    config.num_functions = functions;
    config.num_intervals = intervals;
    return harness::makeWorkload(config);
}

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aDouble(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

/** Full-fidelity metrics digest (every float's bit pattern). */
std::uint64_t
hashMetrics(const sim::SimulationMetrics &m)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, m.invocations);
    hash = fnv1a(hash, m.cold_starts);
    hash = fnv1a(hash, m.warm_starts);
    hash = fnv1aDouble(hash, m.sum_service_ms);
    hash = fnv1aDouble(hash, m.sum_wait_ms);
    hash = fnv1aDouble(hash, m.sum_cold_ms);
    for (float sample : m.service_times_ms) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &sample, sizeof(bits));
        hash = fnv1a(hash, bits);
    }
    for (const sim::FunctionMetrics &fm : m.per_function) {
        hash = fnv1a(hash, fm.invocations);
        hash = fnv1a(hash, fm.cold_starts);
        hash = fnv1aDouble(hash, fm.sum_service_ms);
        hash = fnv1aDouble(hash, fm.keep_alive_cost);
    }
    for (int t = 0; t < kNumTiers; ++t) {
        hash = fnv1aDouble(hash, m.keep_alive[t].successful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasteful_cost);
    }
    return hash;
}

/**
 * Minimal cluster for the standalone façade tests: grants every
 * warm-up, remembers what was asked.
 */
class GrantAllWarmup final : public sim::WarmupInterface
{
  public:
    std::size_t
    ensureWarm(FunctionId fn, Tier tier, std::size_t count,
               TimeMs expiry) override
    {
        (void)fn;
        (void)tier;
        (void)expiry;
        warm_calls += count;
        return count;
    }
    std::size_t
    ensureWarmEvicting(FunctionId fn, Tier tier, std::size_t count,
                       TimeMs expiry, sim::Policy &policy) override
    {
        (void)policy;
        return ensureWarm(fn, tier, count, expiry);
    }
    void
    schedulePrewarm(FunctionId fn, Tier tier, TimeMs start_time,
                    TimeMs expiry) override
    {
        (void)fn;
        (void)tier;
        (void)start_time;
        (void)expiry;
        ++prewarm_calls;
    }
    MemoryMb vacantMemoryMb(Tier tier) const override
    {
        (void)tier;
        return 64 * 1024;
    }
    MemoryMb totalMemoryMb(Tier tier) const override
    {
        (void)tier;
        return 64 * 1024;
    }
    std::size_t warmCount(FunctionId fn, Tier tier) const override
    {
        (void)fn;
        (void)tier;
        return 0;
    }
    TimeMs now() const override { return now_ms; }

    TimeMs now_ms = 0;
    std::size_t warm_calls = 0;
    std::size_t prewarm_calls = 0;
};

// ------------------------------------------------------ equivalence

TEST(ServeEquivalenceTest, EngineAndBothDriversMatchBareBatchExactly)
{
    const harness::Workload workload = serveWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    for (const char *scheme :
         {"openwhisk", "wild", "faascache", "icebreaker"}) {
        SCOPED_TRACE(scheme);

        const std::unique_ptr<sim::Policy> bare =
            harness::makePolicyByName(scheme);
        const std::uint64_t bare_hash = hashMetrics(sim::runSimulation(
            workload.trace, workload.profiles, cluster, *bare));

        const std::unique_ptr<serve::DecisionEngine> sim_engine =
            harness::makeDecisionEngineByName(scheme);
        serve::SimDriver batch(workload.trace, workload.profiles,
                               cluster, *sim_engine);
        EXPECT_EQ(hashMetrics(batch.run()), bare_hash);

        const std::unique_ptr<serve::DecisionEngine> replay_engine =
            harness::makeDecisionEngineByName(scheme);
        serve::ReplayDriver replay(workload.trace, workload.profiles,
                                   cluster, *replay_engine);
        EXPECT_EQ(hashMetrics(replay.run()), bare_hash);
    }
}

TEST(ServeEquivalenceTest, ReplayIsIndependentOfAcceleration)
{
    const harness::Workload workload = serveWorkload(8, 10);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    const std::unique_ptr<serve::DecisionEngine> fast =
        harness::makeDecisionEngineByName("icebreaker");
    serve::ReplayOptions fast_options; // acceleration 0: no pacing
    serve::ReplayDriver fast_replay(workload.trace, workload.profiles,
                                    cluster, *fast, fast_options);
    const std::uint64_t fast_hash = hashMetrics(fast_replay.run());

    // Heavily accelerated but PACED: the wall clock participates in
    // scheduling, and the result still must not change.
    const std::unique_ptr<serve::DecisionEngine> paced =
        harness::makeDecisionEngineByName("icebreaker");
    serve::ReplayOptions paced_options;
    paced_options.acceleration = 4.0e6; // ~0.15 wall-ms per interval
    serve::ReplayDriver paced_replay(workload.trace, workload.profiles,
                                     cluster, *paced, paced_options);
    EXPECT_EQ(hashMetrics(paced_replay.run()), fast_hash);
}

// -------------------------------------------------------- streaming

TEST(ServeStreamingTest, ProbeCsvStreamsIncrementallyWithSameRowSet)
{
    const harness::Workload workload = serveWorkload(8, 40);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // Batch reference: same run through runSimulation with a recorder,
    // exported through the batch writer.
    obs::ObsConfig obs_config;
    obs_config.probes = true;
    obs::RunRecorder batch_recorder(obs_config);
    sim::SimulatorOptions batch_options;
    batch_options.recorder = &batch_recorder;
    const std::unique_ptr<sim::Policy> bare =
        harness::makePolicyByName("icebreaker");
    sim::runSimulation(workload.trace, workload.profiles, cluster,
                       *bare, batch_options);
    std::ostringstream batch_csv;
    obs::writeProbeCsv(batch_csv,
                       {{"live", batch_recorder.probeTableIfEnabled()}});

    // Streamed: flushed per interval into a growing string.
    const std::unique_ptr<serve::DecisionEngine> engine =
        harness::makeDecisionEngineByName("icebreaker");
    std::ostringstream streamed_csv;
    std::vector<std::size_t> sizes_at_intervals;
    serve::ReplayOptions options;
    options.run_label = "live";
    options.probe_csv = &streamed_csv;
    options.on_interval = [&](const serve::ReplayProgress &) {
        sizes_at_intervals.push_back(streamed_csv.str().size());
    };
    serve::ReplayDriver replay(workload.trace, workload.profiles,
                               cluster, *engine, options);
    replay.run();

    // Incremental: the stream grew while the replay was in flight,
    // not in one final dump.
    ASSERT_GT(sizes_at_intervals.size(), 2u);
    EXPECT_GT(sizes_at_intervals[1], 0u);
    EXPECT_GT(sizes_at_intervals.back(), sizes_at_intervals[1]);

    // Same rows: the streamer interleaves interval and forecast rows
    // by flush point, so compare as sorted multisets of lines.
    const auto sortedLines = [](const std::string &text) {
        std::vector<std::string> lines;
        std::istringstream in(text);
        for (std::string line; std::getline(in, line);)
            lines.push_back(line);
        std::sort(lines.begin(), lines.end());
        return lines;
    };
    EXPECT_EQ(sortedLines(streamed_csv.str()),
              sortedLines(batch_csv.str()));
}

// --------------------------------------------------------- serving

TEST(ServeFacadeTest, OnlineSchemesServeWithNoTraceAnywhere)
{
    // Note what this test never constructs: a trace::Trace, an
    // arrival schedule, a Simulator. The engine is fed observations
    // through the façade alone, the way a live front end would.
    workload::FunctionProfile profile;
    profile.name = "served";
    profile.memory_mb = 256;
    profile.cold_start_ms = {1000, 2000};
    profile.exec_ms = {400, 800};
    const std::vector<workload::FunctionProfile> profiles{
        profile, profile, profile};
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    for (const char *scheme :
         {"openwhisk", "wild", "faascache", "icebreaker"}) {
        SCOPED_TRACE(scheme);
        const std::unique_ptr<serve::DecisionEngine> engine =
            harness::makeDecisionEngineByName(scheme);

        sim::SimContext ctx;
        ctx.num_functions = profiles.size();
        ctx.profiles = &profiles;
        ctx.cluster = &cluster;
        ctx.interval_ms = kMsPerMinute;
        engine->initialize(ctx);

        GrantAllWarmup facade_cluster;
        Rng rng(0x5E27E);
        for (IntervalIndex interval = 0; interval < 30; ++interval) {
            facade_cluster.now_ms = interval * kMsPerMinute;
            engine->advanceInterval(facade_cluster);
            // Function 0 arrives every interval, 1 every third, 2
            // at random; outcomes are reported like a front end
            // observing its own dispatches.
            engine->pushArrival(0);
            engine->onExecutionStart(0, Tier::HighEnd, false,
                                     facade_cluster.now_ms);
            if (interval % 3 == 0) {
                engine->pushArrival(1, 2);
                engine->onExecutionStart(1, Tier::LowEnd, true,
                                         facade_cluster.now_ms);
            }
            if (rng.uniformInt(0, 2) == 0)
                engine->pushArrival(2);
        }
        EXPECT_EQ(engine->servedIntervals(), 30);

        // Every scheme must at least survive; the predictive ones
        // must have acted on the perfectly regular function 0.
        const std::vector<serve::Decision> decisions =
            engine->drainDecisions();
        EXPECT_EQ(decisions.size(), engine->decisionCount());
        if (std::string(scheme) == "wild" ||
            std::string(scheme) == "icebreaker") {
            EXPECT_GT(decisions.size(), 0u);
            bool warmed_regular = false;
            for (const serve::Decision &d : decisions) {
                EXPECT_LT(d.interval, 30);
                EXPECT_GT(d.count, 0u);
                if (d.fn == 0)
                    warmed_regular = true;
            }
            EXPECT_TRUE(warmed_regular);
        }
    }
}

TEST(ServeFacadeTest, ObservationsReachThePolicyPerClosedInterval)
{
    /** Records every observation batch it is pushed. */
    class ObservingPolicy final : public sim::Policy
    {
      public:
        const char *name() const override { return "observing"; }
        void
        onIntervalObserved(const sim::IntervalObservation &closed)
            override
        {
            std::vector<std::uint32_t> counts;
            for (FunctionId fn = 0; fn < closed.num_functions; ++fn)
                counts.push_back(closed.arrivalsFor(fn));
            observed.push_back(std::move(counts));
            intervals.push_back(closed.interval);
        }
        TimeMs
        keepAliveAfterExecutionMs(FunctionId, Tier, TimeMs) override
        {
            return 0;
        }
        std::vector<std::vector<std::uint32_t>> observed;
        std::vector<IntervalIndex> intervals;
    };

    auto owned = std::make_unique<ObservingPolicy>();
    ObservingPolicy *policy = owned.get();
    serve::DecisionEngine engine(std::move(owned));

    const std::vector<workload::FunctionProfile> profiles(2);
    sim::SimContext ctx;
    ctx.num_functions = 2;
    ctx.profiles = &profiles;
    ctx.interval_ms = kMsPerMinute;
    engine.initialize(ctx);

    GrantAllWarmup cluster;
    engine.advanceInterval(cluster); // opens interval 0, nothing closed
    engine.pushArrival(0, 3);
    engine.pushArrival(1);
    engine.advanceInterval(cluster); // closes interval 0
    engine.pushArrival(1, 2);
    engine.advanceInterval(cluster); // closes interval 1

    ASSERT_EQ(policy->observed.size(), 2u);
    EXPECT_EQ(policy->intervals, (std::vector<IntervalIndex>{0, 1}));
    EXPECT_EQ(policy->observed[0],
              (std::vector<std::uint32_t>{3, 1}));
    EXPECT_EQ(policy->observed[1],
              (std::vector<std::uint32_t>{0, 2}));
}

TEST(ServeFacadeTest, OracleIsRejectedAtTheServingBoundary)
{
    EXPECT_DEATH(harness::makeDecisionEngineByName("oracle"),
                 "serving");
}

// ----------------------------------------------------------- runner

TEST(ServeRunnerTest, EngineWrappedGridIsThreadCountInvariant)
{
    // Engine-wrapped schemes registered as first-class registry
    // citizens, racing their bare counterparts in one grid. The
    // wrapped cells must equal the bare cells bit for bit, at every
    // thread count (this is also the TSan surface for the engine).
    const harness::ScopedPolicyRegistration wrapped_ib(
        "icebreaker-engine",
        [] { return harness::makeDecisionEngineByName("icebreaker"); });
    const harness::ScopedPolicyRegistration wrapped_wild(
        "wild-engine",
        [] { return harness::makeDecisionEngineByName("wild"); });

    const harness::Workload workload = serveWorkload(16, 60);
    const std::vector<harness::SweepPoint> points = {
        {"", sim::defaultHeterogeneousCluster()}};
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"icebreaker", "icebreaker-engine", "wild", "wild-engine"},
        workload, points, harness::kDefaultBaseSeed, 2);

    const std::vector<harness::RunResult> serial =
        harness::ExperimentRunner(1).run(grid);
    const std::vector<harness::RunResult> threaded =
        harness::ExperimentRunner(4).run(grid);

    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(threaded.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_EQ(hashMetrics(serial[i].metrics),
                  hashMetrics(threaded[i].metrics));
    }
    // Bare vs engine-wrapped, replicate by replicate.
    for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_EQ(hashMetrics(serial[r].metrics),
                  hashMetrics(serial[2 + r].metrics));
        EXPECT_EQ(hashMetrics(serial[4 + r].metrics),
                  hashMetrics(serial[6 + r].metrics));
    }
}

// ---------------------------------------------------- stats export

/**
 * A known snapshot plus the histogram set it borrows. snap.histograms
 * is wired by each test AFTER the fixture lands in its final storage
 * (the pointer must not survive a copy of the fixture).
 */
struct StatsSnapshotFixture
{
    obs::HistogramSet set;
    serve::StatsSnapshot snap;
};

StatsSnapshotFixture
statsFixture()
{
    StatsSnapshotFixture f;
    f.set.cold_start_ms[0].record(1200);
    f.set.cold_start_ms[0].record(800);
    f.set.wait_queue_ms[1].record(15);
    f.snap.run_label = "unit";
    f.snap.intervals_started = 7;
    f.snap.sim_time_ms = 420'000;
    f.snap.decisions = 6;
    f.snap.counters.invocations = 100;
    f.snap.counters.cold_starts = 9;
    f.snap.counters.warm_starts = 91;
    f.snap.counters.wait_queue = 3;
    f.snap.counters.keep_alive_cost = {1.25, 0.5};
    return f;
}

TEST(StatsExporterTest, RenderersEmitCountersAndHistograms)
{
    StatsSnapshotFixture f = statsFixture();
    f.snap.histograms = &f.set;

    const std::string prom = serve::renderPrometheus(f.snap);
    EXPECT_NE(prom.find("# TYPE icebreaker_invocations_total counter"),
              std::string::npos);
    EXPECT_NE(prom.find("icebreaker_invocations_total{run=\"unit\"} "
                        "100"),
              std::string::npos);
    EXPECT_NE(prom.find("icebreaker_keep_alive_cost{run=\"unit\","
                        "tier=\"high-end\"} 1.250000"),
              std::string::npos);
    EXPECT_NE(prom.find("series=\"cold_start_ms\",tier=\"high-end\","
                        "quantile=\"0.95\""),
              std::string::npos);
    // Wall timers carry tier="all" so every sample line has the
    // same label set (Prometheus requirement for one metric name).
    EXPECT_NE(prom.find("series=\"decision_wall_us\",tier=\"all\""),
              std::string::npos);

    const std::string json = serve::renderStatsJson(f.snap);
    EXPECT_NE(json.find("\"invocations\":100"), std::string::npos);
    EXPECT_NE(json.find("\"wait_queue\":3"), std::string::npos);
    EXPECT_NE(json.find("\"keep_alive_cost\":{\"high-end\":1.250000,"
                        "\"low-end\":0.500000}"),
              std::string::npos);
    // Histogram keys use '/' (never '.'): the schema checker splits
    // key paths on dots.
    EXPECT_NE(json.find("\"cold_start_ms/high-end\":{\"count\":2,"),
              std::string::npos);
    EXPECT_EQ(json.find("cold_start_ms.high-end"), std::string::npos);
    // Every series appears even when empty (stable schema).
    EXPECT_NE(json.find("\"setup_attach_ms/low-end\":{\"count\":0,"),
              std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(StatsExporterTest, JsonFileModeRewritesPerUpdate)
{
    StatsSnapshotFixture f = statsFixture();
    f.snap.histograms = &f.set;
    serve::StatsExporterOptions options;
    options.json_path = testing::TempDir() + "/stats_unit.json";

    serve::StatsExporter exporter(options);
    EXPECT_EQ(exporter.port(), -1); // HTTP off by default
    exporter.update(f.snap);
    f.snap.counters.invocations = 250;
    exporter.update(f.snap);

    std::ifstream in(options.json_path, std::ios::binary);
    const std::string file((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_EQ(file, exporter.jsonText());
    EXPECT_NE(file.find("\"invocations\":250"), std::string::npos);
    EXPECT_EQ(file.find("\"invocations\":100"), std::string::npos);
}

TEST(StatsExporterTest, ServesLatestPrometheusTextOverHttp)
{
    StatsSnapshotFixture f = statsFixture();
    f.snap.histograms = &f.set;
    serve::StatsExporterOptions options;
    options.http_port = 0; // ephemeral

    serve::StatsExporter exporter(options);
    if (exporter.port() < 0)
        GTEST_SKIP() << "loopback bind unavailable in this sandbox";
    exporter.update(f.snap);

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(exporter.port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] = "GET /metrics HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, request, sizeof(request) - 1, 0), 0);

    std::string response;
    char buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<std::size_t>(n));
    ::close(fd);

    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(response.find("icebreaker_invocations_total{run="
                            "\"unit\"} 100"),
              std::string::npos);
}

TEST(StatsExporterTest, ReplayPublishesSnapshotsWithoutPerturbing)
{
    const harness::Workload workload = serveWorkload(8, 20);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    // Reference: the same replay with no exporter attached.
    const std::unique_ptr<serve::DecisionEngine> bare =
        harness::makeDecisionEngineByName("icebreaker");
    serve::ReplayDriver bare_replay(workload.trace, workload.profiles,
                                    cluster, *bare);
    const sim::SimulationMetrics reference = bare_replay.run();

    serve::StatsExporterOptions options;
    options.json_path = testing::TempDir() + "/stats_replay.json";
    serve::StatsExporter exporter(options);
    const std::unique_ptr<serve::DecisionEngine> engine =
        harness::makeDecisionEngineByName("icebreaker");
    serve::ReplayOptions replay_options;
    replay_options.stats = &exporter;
    serve::ReplayDriver replay(workload.trace, workload.profiles,
                               cluster, *engine, replay_options);
    const sim::SimulationMetrics metrics = replay.run();

    // Attaching the exporter enables histograms but must not change
    // the simulation (strictly write-only observation).
    EXPECT_EQ(hashMetrics(metrics), hashMetrics(reference));

    // The final snapshot carries the whole run.
    const std::string json = exporter.jsonText();
    EXPECT_NE(json.find("\"invocations\":" +
                        std::to_string(metrics.invocations)),
              std::string::npos);
    EXPECT_NE(json.find("\"intervals\":" +
                        std::to_string(workload.trace.numIntervals())),
              std::string::npos);
    // Cold starts happened, so the latency pillar recorded them on at
    // least one tier.
    ASSERT_GT(metrics.cold_starts, 0u);
    EXPECT_TRUE(
        json.find("\"cold_start_ms/high-end\":{\"count\":0,") ==
            std::string::npos ||
        json.find("\"cold_start_ms/low-end\":{\"count\":0,") ==
            std::string::npos);
}

} // namespace
