/**
 * @file
 * Tests for the competing policies: OpenWhisk, Serverless in the
 * Wild, FaasCache and the Oracle, plus the shared warm-with-spill
 * helper, and the harness/report utilities.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "policies/faascache_policy.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/oracle_policy.hh"
#include "policies/wild_policy.hh"

namespace
{

using namespace iceb;
using namespace iceb::policies;

// --------------------------------------------------------------- Shared

harness::Workload
smallWorkload(std::size_t fns = 60, std::size_t intervals = 360)
{
    trace::SyntheticConfig config;
    config.num_functions = fns;
    config.num_intervals = intervals;
    return harness::makeWorkload(config);
}

// ------------------------------------------------------------- OpenWhisk

TEST(OpenWhiskPolicyTest, FixedKeepAlive)
{
    OpenWhiskPolicy policy;
    EXPECT_EQ(policy.keepAliveAfterExecutionMs(0, Tier::HighEnd, 12345),
              10 * kMsPerMinute);
    OpenWhiskPolicy custom(5 * kMsPerMinute);
    EXPECT_EQ(custom.keepAliveAfterExecutionMs(9, Tier::LowEnd, 0),
              5 * kMsPerMinute);
    EXPECT_EQ(policy.overheadMs(), 0);
}

TEST(OpenWhiskPolicyTest, HighEndFirstPlacement)
{
    OpenWhiskPolicy policy;
    const auto order = policy.coldPlacementOrder(0);
    EXPECT_EQ(order[0], Tier::HighEnd);
    EXPECT_EQ(order[1], Tier::LowEnd);
}

// ------------------------------------------------------------- FaasCache

TEST(FaasCachePolicyTest, PriorityUsesFrequencyCostAndSize)
{
    trace::Trace tr(10, 60'000);
    for (int i = 0; i < 2; ++i) {
        trace::FunctionSeries fn;
        fn.name = "f" + std::to_string(i);
        fn.memory_mb = 256;
        fn.avg_exec_ms = 500;
        fn.concurrency.assign(10, 0);
        tr.addFunction(fn);
    }
    workload::FunctionProfile cheap;
    cheap.name = "cheap";
    cheap.memory_mb = 1024;
    cheap.cold_start_ms = {500, 500};
    cheap.exec_ms = {100, 200};
    workload::FunctionProfile dear;
    dear.name = "dear";
    dear.memory_mb = 128;
    dear.cold_start_ms = {3000, 3000};
    dear.exec_ms = {100, 200};
    std::vector<workload::FunctionProfile> profiles{cheap, dear};
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    FaasCachePolicy policy;
    sim::SimContext ctx;
    ctx.num_functions = tr.numFunctions();
    ctx.profiles = &profiles;
    ctx.cluster = &cluster;
    ctx.interval_ms = 60'000;
    policy.initialize(ctx);

    // Same usage count each: the small, expensive-to-rebuild function
    // must have the higher (more protected) priority.
    policy.onExecutionStart(0, Tier::HighEnd, true, 0);
    policy.onExecutionStart(1, Tier::HighEnd, true, 0);
    const double p_cheap =
        policy.evictionPriority(0, Tier::HighEnd, 0, 0);
    const double p_dear =
        policy.evictionPriority(1, Tier::HighEnd, 0, 0);
    EXPECT_GT(p_dear, p_cheap);

    // Frequency raises priority.
    policy.onExecutionStart(0, Tier::HighEnd, false, 0);
    policy.onExecutionStart(0, Tier::HighEnd, false, 0);
    EXPECT_GT(policy.evictionPriority(0, Tier::HighEnd, 0, 0), p_cheap);

    // Eviction advances the clock (aging).
    EXPECT_DOUBLE_EQ(policy.clock(), 0.0);
    policy.onEviction(0, Tier::HighEnd, 0);
    EXPECT_GT(policy.clock(), 0.0);
}

// ------------------------------------------------------------------ Wild

TEST(WildPolicyTest, RunsAndImprovesWarmRateForRegularFunctions)
{
    // A single perfectly regular function: Wild's histogram should
    // warm it ahead of each arrival.
    trace::Trace tr(400, 60'000);
    trace::FunctionSeries fn;
    fn.name = "regular";
    fn.memory_mb = 256;
    fn.avg_exec_ms = 800;
    fn.concurrency.assign(400, 0);
    for (std::size_t t = 5; t < 400; t += 25)
        fn.concurrency[t] = 1;
    tr.addFunction(fn);

    workload::FunctionProfile profile;
    profile.name = "p";
    profile.memory_mb = 256;
    profile.cold_start_ms = {1000, 1000};
    profile.exec_ms = {800, 1600};
    std::vector<workload::FunctionProfile> profiles{profile};
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    OpenWhiskPolicy base;
    const auto base_m =
        sim::runSimulation(tr, profiles, cluster, base);
    WildPolicy wild;
    const auto wild_m =
        sim::runSimulation(tr, profiles, cluster, wild);

    // 25-minute gaps defeat the 10-minute fixed keep-alive but not
    // the histogram.
    EXPECT_LT(base_m.warmStartFraction(), 0.2);
    EXPECT_GT(wild_m.warmStartFraction(), 0.6);
    EXPECT_LT(wild_m.totalKeepAliveCost(),
              base_m.totalKeepAliveCost());
}

TEST(WildPolicyTest, EndToEndSmoke)
{
    const harness::Workload workload = smallWorkload();
    const auto result = harness::runScheme(
        harness::Scheme::Wild, workload,
        sim::defaultHeterogeneousCluster());
    EXPECT_GT(result.metrics.invocations, 0u);
    EXPECT_GT(result.metrics.warm_starts, 0u);
}

// ---------------------------------------------------------------- Oracle

TEST(OraclePolicyTest, ZeroKeepAliveAfterExecution)
{
    OraclePolicy policy;
    EXPECT_EQ(policy.keepAliveAfterExecutionMs(0, Tier::HighEnd, 999),
              0);
}

TEST(OraclePolicyTest, BestServiceTimeOfAllSchemes)
{
    const harness::Workload workload = smallWorkload();
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const auto results = harness::runAllSchemes(workload, cluster);
    const auto &oracle = results.back();
    ASSERT_EQ(oracle.scheme, harness::Scheme::Oracle);
    for (const auto &other : results) {
        EXPECT_LE(oracle.metrics.meanServiceMs(),
                  other.metrics.meanServiceMs() + 1e-9)
            << harness::schemeName(other.scheme);
        EXPECT_LE(oracle.metrics.totalKeepAliveCost(),
                  other.metrics.totalKeepAliveCost() + 1e-9);
    }
    EXPECT_GT(oracle.metrics.warmStartFraction(), 0.99);
}

// --------------------------------------------------------------- Harness

TEST(HarnessTest, SchemeNamesAndFactory)
{
    EXPECT_EQ(harness::allSchemes().size(), 5u);
    for (harness::Scheme scheme : harness::allSchemes()) {
        const auto policy = harness::makePolicy(scheme);
        ASSERT_NE(policy, nullptr);
        EXPECT_STRNE(policy->name(), "");
    }
    EXPECT_STREQ(harness::schemeName(harness::Scheme::IceBreaker),
                 "IceBreaker");
}

TEST(HarnessTest, ImprovementMath)
{
    EXPECT_DOUBLE_EQ(harness::improvementOver(100.0, 60.0), 0.4);
    EXPECT_DOUBLE_EQ(harness::improvementOver(100.0, 130.0), -0.3);
    EXPECT_DOUBLE_EQ(harness::improvementOver(0.0, 50.0), 0.0);
}

TEST(HarnessTest, ServiceSummary)
{
    const std::vector<float> samples{100.0f, 200.0f, 300.0f, 400.0f,
                                     10000.0f};
    const harness::ServiceSummary summary =
        harness::summarizeService(samples);
    EXPECT_DOUBLE_EQ(summary.median_ms, 300.0);
    EXPECT_GT(summary.p95_ms, 400.0);
    EXPECT_NEAR(summary.mean_ms, 2200.0, 1e-9);
}

TEST(HarnessTest, CohortsArePlausible)
{
    const harness::Workload workload = smallWorkload(100, 720);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const auto base = harness::runScheme(harness::Scheme::OpenWhisk,
                                         workload, cluster);
    const harness::Cohorts cohorts =
        harness::buildCohorts(workload.trace, base.metrics);
    EXPECT_GT(cohorts.hard_to_predict.size(), 5u);
    EXPECT_GT(cohorts.infrequent.size(), 5u);
    EXPECT_GT(cohorts.frequent.size(), 5u);
    EXPECT_GT(cohorts.spiky.size(), 5u);

    // Infrequent cohort's functions really are less invoked than the
    // frequent cohort's.
    auto invocations = [&](FunctionId fn) {
        return base.metrics.per_function[fn].invocations;
    };
    std::uint64_t max_infrequent = 0;
    for (FunctionId fn : cohorts.infrequent)
        max_infrequent = std::max(max_infrequent, invocations(fn));
    std::uint64_t min_frequent = UINT64_MAX;
    for (FunctionId fn : cohorts.frequent)
        min_frequent = std::min(min_frequent, invocations(fn));
    EXPECT_LE(max_infrequent, min_frequent);
}

TEST(HarnessTest, PerFunctionImprovementVectors)
{
    const harness::Workload workload = smallWorkload(50, 300);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const auto base = harness::runScheme(harness::Scheme::OpenWhisk,
                                         workload, cluster);
    const auto oracle = harness::runScheme(harness::Scheme::Oracle,
                                           workload, cluster);
    const std::vector<double> improvement =
        harness::perFunctionServiceImprovement(base.metrics,
                                               oracle.metrics);
    EXPECT_FALSE(improvement.empty());
    // The Oracle never degrades a function's mean service time.
    for (double value : improvement)
        EXPECT_GE(value, -1e-9);
}

} // namespace
