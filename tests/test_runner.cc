/**
 * @file
 * Tests for the parallel experiment engine: the policy registry, the
 * determinism contract (threaded == serial, bit for bit), metrics
 * merge correctness against whole-set collection, and replicate
 * aggregation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hh"
#include "harness/registry.hh"
#include "harness/runner.hh"
#include "sim/metrics_summary.hh"

namespace
{

using namespace iceb;

harness::Workload
smallWorkload()
{
    trace::SyntheticConfig config;
    config.num_functions = 24;
    config.num_intervals = 90;
    config.min_memory_mb = 256;
    return harness::makeWorkload(config);
}

/** Exact (bitwise for floats) equality of two runs' metrics. */
void
expectMetricsIdentical(const sim::SimulationMetrics &a,
                       const sim::SimulationMetrics &b)
{
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_EQ(a.warm_starts, b.warm_starts);
    EXPECT_EQ(a.cold_no_container, b.cold_no_container);
    EXPECT_EQ(a.cold_all_busy, b.cold_all_busy);
    EXPECT_EQ(a.cold_setup_attach, b.cold_setup_attach);
    EXPECT_EQ(a.sum_service_ms, b.sum_service_ms);
    EXPECT_EQ(a.sum_wait_ms, b.sum_wait_ms);
    EXPECT_EQ(a.sum_cold_ms, b.sum_cold_ms);
    EXPECT_EQ(a.sum_exec_ms, b.sum_exec_ms);
    EXPECT_EQ(a.sum_overhead_ms, b.sum_overhead_ms);
    EXPECT_EQ(a.service_times_ms, b.service_times_ms);
    EXPECT_EQ(a.service_times_high_ms, b.service_times_high_ms);
    EXPECT_EQ(a.service_times_low_ms, b.service_times_low_ms);
    ASSERT_EQ(a.per_function.size(), b.per_function.size());
    for (std::size_t fn = 0; fn < a.per_function.size(); ++fn) {
        EXPECT_EQ(a.per_function[fn].invocations,
                  b.per_function[fn].invocations);
        EXPECT_EQ(a.per_function[fn].sum_service_ms,
                  b.per_function[fn].sum_service_ms);
        EXPECT_EQ(a.per_function[fn].keep_alive_cost,
                  b.per_function[fn].keep_alive_cost);
    }
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        EXPECT_EQ(a.keep_alive[t].successful_cost,
                  b.keep_alive[t].successful_cost);
        EXPECT_EQ(a.keep_alive[t].wasteful_cost,
                  b.keep_alive[t].wasteful_cost);
        EXPECT_EQ(a.keep_alive[t].wasted_mb_ms,
                  b.keep_alive[t].wasted_mb_ms);
    }
}

TEST(SeedDerivationTest, PureAndDecorrelated)
{
    EXPECT_EQ(deriveSeed(1, 0), deriveSeed(1, 0));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
    EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
    // forRun is a thin wrapper over deriveSeed.
    EXPECT_EQ(sim::SimulatorOptions::forRun(7, 3).seed,
              deriveSeed(7, 3));
}

TEST(RegistryTest, BuiltinsRegistered)
{
    harness::PolicyRegistry &registry =
        harness::PolicyRegistry::instance();
    for (harness::Scheme scheme : harness::allSchemes()) {
        EXPECT_TRUE(registry.contains(harness::schemeKey(scheme)));
        const std::unique_ptr<sim::Policy> policy =
            harness::makePolicy(scheme);
        ASSERT_NE(policy, nullptr);
        // Policies report their registry key as their name.
        EXPECT_STREQ(policy->name(), harness::schemeKey(scheme));
    }
    EXPECT_FALSE(registry.contains("no-such-policy"));
}

TEST(RegistryTest, ScopedRegistrationAddsAndRemoves)
{
    harness::PolicyRegistry &registry =
        harness::PolicyRegistry::instance();
    {
        const harness::ScopedPolicyRegistration reg(
            "test-openwhisk-clone",
            [] { return harness::makePolicy(harness::Scheme::OpenWhisk); });
        EXPECT_TRUE(registry.contains("test-openwhisk-clone"));
        const auto policy =
            harness::makePolicyByName("test-openwhisk-clone");
        EXPECT_STREQ(policy->name(), "openwhisk");
    }
    EXPECT_FALSE(registry.contains("test-openwhisk-clone"));
}

TEST(RunnerTest, GridOrderIsPointSchemeReplicate)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"p0", sim::defaultHeterogeneousCluster()},
        {"p1", sim::defaultHeterogeneousCluster()},
    };
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"openwhisk", "oracle"}, workload, points, 42, 3);
    ASSERT_EQ(grid.size(), 2u * 2u * 3u);
    EXPECT_EQ(grid[0].label, "p0");
    EXPECT_EQ(grid[0].scheme, "openwhisk");
    EXPECT_EQ(grid[0].run_index, 0u);
    EXPECT_EQ(grid[2].run_index, 2u);
    EXPECT_EQ(grid[3].scheme, "oracle");
    EXPECT_EQ(grid[6].label, "p1");
    for (const harness::RunSpec &spec : grid) {
        EXPECT_EQ(spec.base_seed, 42u);
        EXPECT_EQ(spec.workload, &workload);
    }
}

TEST(RunnerDeterminismTest, ThreadedMatchesSerialBitForBit)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"", sim::defaultHeterogeneousCluster()}};
    std::vector<std::string> schemes;
    for (harness::Scheme scheme : harness::allSchemes())
        schemes.push_back(harness::schemeKey(scheme));
    const std::vector<harness::RunSpec> grid =
        harness::buildGrid(schemes, workload, points,
                           harness::kDefaultBaseSeed, 2);

    const std::vector<harness::RunResult> serial =
        harness::ExperimentRunner(1).run(grid);
    const std::vector<harness::RunResult> threaded =
        harness::ExperimentRunner(4).run(grid);

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].spec.scheme, threaded[i].spec.scheme);
        EXPECT_EQ(serial[i].spec.run_index,
                  threaded[i].spec.run_index);
        expectMetricsIdentical(serial[i].metrics,
                               threaded[i].metrics);
    }
}

TEST(RunnerDeterminismTest, RepeatedThreadedRunsIdentical)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"", sim::defaultHeterogeneousCluster()}};
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"icebreaker", "wild"}, workload, points, 7, 2);
    const std::vector<harness::RunResult> a =
        harness::ExperimentRunner(3).run(grid);
    const std::vector<harness::RunResult> b =
        harness::ExperimentRunner(3).run(grid);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectMetricsIdentical(a[i].metrics, b[i].metrics);
}

TEST(RunnerDeterminismTest, ReplicatesUseDistinctStreams)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"", sim::defaultHeterogeneousCluster()}};
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"openwhisk"}, workload, points, harness::kDefaultBaseSeed, 2);
    const std::vector<harness::RunResult> results =
        harness::ExperimentRunner(2).run(grid);
    ASSERT_EQ(results.size(), 2u);
    // Same trace, different arrival jitter: totals match, samples
    // (almost surely) differ.
    EXPECT_EQ(results[0].metrics.invocations,
              results[1].metrics.invocations);
    EXPECT_NE(results[0].metrics.service_times_ms,
              results[1].metrics.service_times_ms);
}

/** Hand-built invocation fixture split across two collectors. */
TEST(MetricsMergeTest, MergeEqualsWholeSetCollection)
{
    const auto outcome = [](FunctionId fn, Tier tier, bool cold,
                            TimeMs wait, TimeMs cold_ms, TimeMs exec) {
        sim::InvocationOutcome o;
        o.fn = fn;
        o.tier = tier;
        o.cold = cold;
        o.wait_ms = wait;
        o.cold_start_ms = cold_ms;
        o.exec_ms = exec;
        return o;
    };
    const std::vector<sim::InvocationOutcome> outcomes = {
        outcome(0, Tier::HighEnd, true, 0, 900, 1000),
        outcome(0, Tier::HighEnd, false, 10, 0, 1000),
        outcome(1, Tier::LowEnd, true, 250, 1500, 2000),
        outcome(2, Tier::HighEnd, false, 0, 0, 500),
    };

    // Whole set through one collector...
    sim::MetricsCollector whole(3);
    for (const auto &o : outcomes)
        whole.recordInvocation(o);
    whole.recordColdCause(false, false);
    whole.recordColdCause(true, true);
    whole.recordKeepAlive(Tier::HighEnd, 0, 256, 60'000, true, 1e-9);
    whole.recordKeepAlive(Tier::LowEnd, 1, 512, 30'000, false, 5e-10);

    // ...vs a 2/2 split merged afterwards.
    sim::MetricsCollector first(3), second(3);
    first.recordInvocation(outcomes[0]);
    first.recordInvocation(outcomes[1]);
    first.recordColdCause(false, false);
    first.recordKeepAlive(Tier::HighEnd, 0, 256, 60'000, true, 1e-9);
    second.recordInvocation(outcomes[2]);
    second.recordInvocation(outcomes[3]);
    second.recordColdCause(true, true);
    second.recordKeepAlive(Tier::LowEnd, 1, 512, 30'000, false, 5e-10);

    sim::SimulationMetrics merged = first.take();
    merged.merge(second.take());
    expectMetricsIdentical(whole.take(), merged);

    // Spot-check the hand-computed values.
    EXPECT_EQ(merged.invocations, 4u);
    EXPECT_EQ(merged.cold_starts, 2u);
    EXPECT_EQ(merged.cold_setup_attach, 1u);
    EXPECT_DOUBLE_EQ(merged.sum_service_ms,
                     1900.0 + 1010.0 + 3750.0 + 500.0);
    EXPECT_EQ(merged.per_function[0].invocations, 2u);
    EXPECT_EQ(merged.service_times_low_ms.size(), 1u);
}

TEST(MetricsSummaryTest, HandCheckedAggregation)
{
    // Three fake "runs" with known scalar metrics.
    std::vector<sim::SimulationMetrics> runs(3);
    const double services[] = {100.0, 200.0, 300.0};
    for (std::size_t i = 0; i < runs.size(); ++i) {
        runs[i].per_function.resize(1);
        runs[i].invocations = 2;
        runs[i].warm_starts = i; // warm fractions 0, 0.5, 1
        runs[i].sum_service_ms = 2.0 * services[i];
        runs[i].service_times_ms = {
            static_cast<float>(services[i]),
            static_cast<float>(services[i])};
        runs[i].keep_alive[0].successful_cost = 1.0 + i;
    }
    const sim::MetricsSummary summary = sim::summarizeRuns(runs);
    EXPECT_EQ(summary.runs, 3u);
    EXPECT_DOUBLE_EQ(summary.mean_service_ms.mean, 200.0);
    // Population stddev of {100, 200, 300}.
    EXPECT_NEAR(summary.mean_service_ms.stddev, 81.6496580927726,
                1e-9);
    EXPECT_DOUBLE_EQ(summary.mean_service_ms.min, 100.0);
    EXPECT_DOUBLE_EQ(summary.mean_service_ms.max, 300.0);
    EXPECT_DOUBLE_EQ(summary.warm_start_fraction.mean, 0.5);
    EXPECT_DOUBLE_EQ(summary.keep_alive_cost.mean, 2.0);
    EXPECT_DOUBLE_EQ(summary.invocations.mean, 2.0);
    // Pooled: all six samples concatenated; totals add.
    EXPECT_EQ(summary.pooled.invocations, 6u);
    EXPECT_EQ(summary.pooled.service_times_ms.size(), 6u);
    EXPECT_DOUBLE_EQ(summary.pooled.totalKeepAliveCost(), 6.0);
    EXPECT_DOUBLE_EQ(summary.pooledServicePercentileMs(0.5), 200.0);
}

TEST(MetricsSummaryTest, SummarizeGridGroupsCells)
{
    const harness::Workload workload = smallWorkload();
    const std::vector<harness::SweepPoint> points = {
        {"a", sim::defaultHeterogeneousCluster()},
        {"b", sim::defaultHeterogeneousCluster()},
    };
    const std::vector<harness::RunSpec> grid = harness::buildGrid(
        {"openwhisk", "oracle"}, workload, points,
        harness::kDefaultBaseSeed, 2);
    const std::vector<harness::CellSummary> cells =
        harness::summarizeGrid(harness::ExperimentRunner(2).run(grid));
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_EQ(cells[0].label, "a");
    EXPECT_EQ(cells[0].scheme, "openwhisk");
    EXPECT_EQ(cells[1].scheme, "oracle");
    EXPECT_EQ(cells[2].label, "b");
    for (const harness::CellSummary &cell : cells) {
        EXPECT_EQ(cell.summary.runs, 2u);
        EXPECT_EQ(cell.summary.pooled.invocations,
                  2 * workload.trace.totalInvocations());
    }
}

} // namespace

TEST(RunnerConvenienceTest, RunAllSchemesParallelMatchesSchemeOrder)
{
    using namespace iceb;
    const harness::Workload workload = smallWorkload();
    harness::RunnerOptions options;
    options.threads = 2;
    options.repeats = 2;
    const std::vector<harness::SchemeSummary> summaries =
        harness::runAllSchemesParallel(
            workload, sim::defaultHeterogeneousCluster(), options);
    const std::vector<harness::Scheme> order = harness::allSchemes();
    ASSERT_EQ(summaries.size(), order.size());
    for (std::size_t i = 0; i < summaries.size(); ++i) {
        EXPECT_EQ(summaries[i].scheme, order[i]);
        EXPECT_EQ(summaries[i].summary.runs, 2u);
        EXPECT_GT(summaries[i].summary.invocations.mean, 0.0);
    }
}
