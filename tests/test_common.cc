/**
 * @file
 * Tests for the common substrate: units, CSV, table printing,
 * logging levels and core types.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace
{

using namespace iceb;

// ----------------------------------------------------------------- Types

TEST(TypesTest, TierHelpers)
{
    EXPECT_EQ(tierIndex(Tier::HighEnd), 0);
    EXPECT_EQ(tierIndex(Tier::LowEnd), 1);
    EXPECT_EQ(otherTier(Tier::HighEnd), Tier::LowEnd);
    EXPECT_EQ(otherTier(Tier::LowEnd), Tier::HighEnd);
    EXPECT_STREQ(tierName(Tier::HighEnd), "high-end");
    EXPECT_STREQ(tierName(Tier::LowEnd), "low-end");
}

// ----------------------------------------------------------------- Units

TEST(UnitsTest, TimeConversions)
{
    EXPECT_EQ(secondsToMs(2.5), 2500);
    EXPECT_EQ(secondsToMs(0.0015), 2); // rounds
    EXPECT_DOUBLE_EQ(msToSeconds(1500), 1.5);
    EXPECT_EQ(minutesToMs(10), 600'000);
    EXPECT_EQ(gbToMb(2.0), 2048);
}

TEST(UnitsTest, KeepAliveCostMatchesHandComputation)
{
    // 1 GB held for 1 hour at $0.01475/GB/h must cost $0.01475.
    const double rate = dollarsPerGbHourToMbMs(0.01475);
    const Dollars cost = keepAliveCost(kMbPerGb, kMsPerHour, rate);
    EXPECT_NEAR(cost, 0.01475, 1e-12);
}

TEST(UnitsTest, KeepAliveCostScalesLinearly)
{
    const double rate = dollarsPerGbHourToMbMs(0.0084);
    const Dollars one = keepAliveCost(512, 60'000, rate);
    EXPECT_NEAR(keepAliveCost(1024, 60'000, rate), 2.0 * one, 1e-15);
    EXPECT_NEAR(keepAliveCost(512, 120'000, rate), 2.0 * one, 1e-15);
}

// ------------------------------------------------------------------- CSV

TEST(CsvTest, ParsesSimpleRows)
{
    std::istringstream in("a,b,c\n1,2,3\n");
    CsvReader reader(in);
    auto header = reader.nextRow();
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ((*header)[0], "a");
    auto row = reader.nextRow();
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[2], "3");
    EXPECT_FALSE(reader.nextRow().has_value());
    EXPECT_EQ(reader.rowsRead(), 2u);
}

TEST(CsvTest, HandlesQuotedFields)
{
    std::istringstream in("\"hello, world\",\"say \"\"hi\"\"\"\n");
    CsvReader reader(in);
    auto row = reader.nextRow();
    ASSERT_TRUE(row.has_value());
    ASSERT_EQ(row->size(), 2u);
    EXPECT_EQ((*row)[0], "hello, world");
    EXPECT_EQ((*row)[1], "say \"hi\"");
}

TEST(CsvTest, HandlesCrlfAndEmptyFields)
{
    std::istringstream in("a,,c\r\n");
    CsvReader reader(in);
    auto row = reader.nextRow();
    ASSERT_TRUE(row.has_value());
    ASSERT_EQ(row->size(), 3u);
    EXPECT_EQ((*row)[1], "");
    EXPECT_EQ((*row)[2], "c");
}

TEST(CsvTest, WriterQuotesOnlyWhenNeeded)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(out.str(),
              "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvTest, RoundTrip)
{
    std::ostringstream out;
    CsvWriter writer(out);
    writer.writeRow({"x,y", "z", "\"q\""});
    std::istringstream in(out.str());
    CsvReader reader(in);
    auto row = reader.nextRow();
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[0], "x,y");
    EXPECT_EQ((*row)[1], "z");
    EXPECT_EQ((*row)[2], "\"q\"");
}

TEST(CsvTest, NumericParsers)
{
    EXPECT_DOUBLE_EQ(csvToDouble("3.25", "test"), 3.25);
    EXPECT_EQ(csvToInt("-17", "test"), -17);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, AlignsColumns)
{
    TextTable table("T");
    table.setHeader({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("| name      | value |"), std::string::npos);
    EXPECT_NE(text.find("| long-name | 22    |"), std::string::npos);
    EXPECT_NE(text.find("T\n"), std::string::npos);
}

TEST(TableTest, PadsShortRows)
{
    TextTable table;
    table.setHeader({"a", "b", "c"});
    table.addRow({"1"});
    std::ostringstream out;
    table.print(out);
    EXPECT_NE(out.str().find("| 1 |   |   |"), std::string::npos);
}

TEST(TableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.4567), "45.7%");
    EXPECT_EQ(TextTable::pct(-0.05, 0), "-5%");
}

TEST(TableTest, EmptyTablePrintsNothing)
{
    TextTable table;
    std::ostringstream out;
    table.print(out);
    EXPECT_TRUE(out.str().empty());
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelGate)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_FATAL_FAILURE(ICEB_ASSERT(1 + 1 == 2, "fine"));
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(iceb::panic("boom ", 42), "panic: boom 42");
}

TEST(LoggingDeathTest, FatalExits)
{
    EXPECT_EXIT(iceb::fatal("bad config"),
                ::testing::ExitedWithCode(1), "fatal: bad config");
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(ICEB_ASSERT(false, "broken"), "assertion failed");
}

} // namespace
