/**
 * @file
 * Tests for the container lifecycle and memory accounting inside
 * ClusterState: warm pools, setup attach, eviction order, expiry and
 * keep-alive cost attribution.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "policies/openwhisk_policy.hh"
#include "sim/cluster.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

/** Two tiny servers (one per tier) for controlled pressure. */
ClusterConfig
tinyCluster(MemoryMb high_mb = 1024, MemoryMb low_mb = 1024)
{
    ClusterConfig config = defaultHeterogeneousCluster();
    config.spec(Tier::HighEnd).server_count = 1;
    config.spec(Tier::HighEnd).memory_per_server_mb = high_mb;
    config.spec(Tier::LowEnd).server_count = 1;
    config.spec(Tier::LowEnd).memory_per_server_mb = low_mb;
    return config;
}

workload::FunctionProfile
simpleProfile(MemoryMb mem, TimeMs cst = 1000, TimeMs exec = 2000)
{
    workload::FunctionProfile p;
    p.name = "p";
    p.memory_mb = mem;
    p.cold_start_ms = {cst, cst};
    p.exec_ms = {exec, exec * 2};
    return p;
}

class ClusterStateTest : public ::testing::Test
{
  protected:
    ClusterStateTest()
        : config_(tinyCluster()),
          profiles_({simpleProfile(256), simpleProfile(512)}),
          metrics_(profiles_.size()),
          cluster_(config_, profiles_, events_, metrics_)
    {
        cluster_.setNow(0);
    }

    ClusterConfig config_;
    std::vector<workload::FunctionProfile> profiles_;
    EventQueue events_;
    MetricsCollector metrics_;
    ClusterState cluster_;
    policies::OpenWhiskPolicy policy_;
    const std::array<Tier, 2> order_{Tier::HighEnd, Tier::LowEnd};
};

TEST_F(ClusterStateTest, EnsureWarmAllocatesMemoryAndSchedulesReady)
{
    const std::size_t placed = cluster_.ensureWarm(0, Tier::HighEnd, 2,
                                                   120'000);
    EXPECT_EQ(placed, 2u);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 1024 - 512);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 2u);
    EXPECT_EQ(cluster_.liveCount(0), 2u);
    // Two PrewarmReady events scheduled at the cold-start horizon.
    EXPECT_EQ(events_.size(), 2u);
    EXPECT_EQ(*events_.peekTime(), 1000);
}

TEST_F(ClusterStateTest, EnsureWarmCountsExistingInstances)
{
    cluster_.ensureWarm(0, Tier::HighEnd, 2, 120'000);
    const std::size_t placed = cluster_.ensureWarm(0, Tier::HighEnd, 3,
                                                   150'000);
    EXPECT_EQ(placed, 3u); // 2 existing renewed + 1 created
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 3u);
}

TEST_F(ClusterStateTest, EnsureWarmStopsAtVacantMemory)
{
    // 256 MB each into a 1024 MB server: only 4 fit.
    const std::size_t placed = cluster_.ensureWarm(0, Tier::HighEnd, 9,
                                                   120'000);
    EXPECT_EQ(placed, 4u);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 0);
}

TEST_F(ClusterStateTest, AcquireWarmNeedsReadyContainer)
{
    cluster_.ensureWarm(0, Tier::HighEnd, 1, 120'000);
    // Still in setup: no idle-warm container yet.
    EXPECT_FALSE(cluster_.acquireWarm(0, order_).has_value());

    // Process the PrewarmReady event.
    auto ready = events_.pop();
    ASSERT_TRUE(ready.has_value());
    cluster_.setNow(ready->time);
    cluster_.handlePrewarmReady(*ready, policy_);

    auto acq = cluster_.acquireWarm(0, order_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_FALSE(acq->cold);
    EXPECT_EQ(acq->tier, Tier::HighEnd);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 0u);
}

TEST_F(ClusterStateTest, AcquireSetupChargesRemainingColdStart)
{
    cluster_.ensureWarm(0, Tier::HighEnd, 1, 120'000);
    cluster_.setNow(400); // setup completes at 1000
    auto acq = cluster_.acquireSetup(0, order_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_TRUE(acq->cold);
    EXPECT_EQ(acq->ready_at, 1000);
}

TEST_F(ClusterStateTest, AcquireColdPrefersTierOrder)
{
    auto acq = cluster_.acquireCold(0, {Tier::LowEnd, Tier::HighEnd},
                                    policy_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_EQ(acq->tier, Tier::LowEnd);
    EXPECT_TRUE(acq->cold);
    EXPECT_EQ(acq->ready_at, 1000);
}

TEST_F(ClusterStateTest, AcquireColdSpillsWhenPrimaryFull)
{
    cluster_.ensureWarm(1, Tier::HighEnd, 2, 120'000); // 1024 MB: full
    auto acq = cluster_.acquireCold(1, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    // High-end is full of fn 1's own warm instances (never evicted
    // for itself); the cold start spills to low-end.
    EXPECT_EQ(acq->tier, Tier::LowEnd);
}

TEST_F(ClusterStateTest, ColdPrefersVacantTierOverEviction)
{
    // High-end full of fn 0 idles, low-end vacant: the cold start
    // spills to low-end rather than evicting.
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 120'000);
    cluster_.setNow(2000);
    auto acq = cluster_.acquireCold(1, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_EQ(acq->tier, Tier::LowEnd);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 4u);
}

TEST_F(ClusterStateTest, ColdEvictsIdleLruWhenBothTiersFull)
{
    // Fill both tiers with fn 0 idles, then cold-start fn 1.
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 120'000);
    cluster_.ensureWarm(0, Tier::LowEnd, 4, 120'000);
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    cluster_.setNow(2000);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 0);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::LowEnd), 0);
    auto acq = cluster_.acquireCold(1, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_EQ(acq->tier, Tier::HighEnd);
    // Two 256 MB idles evicted for the 512 MB container.
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 2u);
    // The evicted idle periods were wasteful keep-alive.
    const SimulationMetrics m = metrics_.take();
    EXPECT_GT(m.tierKeepAlive(Tier::HighEnd).wasteful_cost, 0.0);
}

TEST_F(ClusterStateTest, FinishExecutionKeepAliveThenExpiry)
{
    auto acq = cluster_.acquireCold(0, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    cluster_.setNow(3000);
    cluster_.finishExecution(acq->id, 60'000, policy_);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 1u);

    // Find the expiry event and fire it.
    std::optional<Event> expiry;
    while (auto event = events_.pop()) {
        if (event->type == EventType::ContainerExpiry)
            expiry = event;
    }
    ASSERT_TRUE(expiry.has_value());
    EXPECT_EQ(expiry->time, 63'000);
    cluster_.setNow(expiry->time);
    cluster_.handleContainerExpiry(*expiry, policy_);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 0u);
    EXPECT_EQ(cluster_.liveCount(0), 0u);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 1024);

    // The 60 s idle period was wasteful keep-alive.
    const SimulationMetrics m = metrics_.take();
    EXPECT_GT(m.tierKeepAlive(Tier::HighEnd).wasteful_cost, 0.0);
    EXPECT_DOUBLE_EQ(m.tierKeepAlive(Tier::HighEnd).successful_cost,
                     0.0);
}

TEST_F(ClusterStateTest, WarmHitRecordsSuccessfulKeepAlive)
{
    auto acq = cluster_.acquireCold(0, order_, policy_);
    cluster_.setNow(3000);
    cluster_.finishExecution(acq->id, 60'000, policy_);
    cluster_.setNow(33'000); // idle for 30 s
    auto warm = cluster_.acquireWarm(0, order_);
    ASSERT_TRUE(warm.has_value());

    const SimulationMetrics m = metrics_.take();
    const double rate =
        dollarsPerGbHourToMbMs(
            config_.spec(Tier::HighEnd).dollars_per_gb_hour);
    EXPECT_NEAR(m.tierKeepAlive(Tier::HighEnd).successful_cost,
                keepAliveCost(256, 30'000, rate), 1e-12);
    EXPECT_DOUBLE_EQ(m.tierKeepAlive(Tier::HighEnd).wasteful_cost, 0.0);
}

TEST_F(ClusterStateTest, ZeroKeepAliveDestroysImmediately)
{
    auto acq = cluster_.acquireCold(0, order_, policy_);
    cluster_.setNow(3000);
    cluster_.finishExecution(acq->id, 0, policy_);
    EXPECT_EQ(cluster_.liveCount(0), 0u);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 1024);
    const SimulationMetrics m = metrics_.take();
    EXPECT_DOUBLE_EQ(m.totalKeepAliveCost(), 0.0);
}

TEST_F(ClusterStateTest, RenewalCancelsStaleExpiry)
{
    cluster_.ensureWarm(0, Tier::HighEnd, 1, 10'000);
    auto ready = events_.pop();
    cluster_.setNow(ready->time);
    cluster_.handlePrewarmReady(*ready, policy_);

    // Renew with a later expiry; the first expiry event is now stale.
    cluster_.ensureWarm(0, Tier::HighEnd, 1, 50'000);
    std::vector<Event> expiries;
    while (auto event = events_.pop())
        if (event->type == EventType::ContainerExpiry)
            expiries.push_back(*event);
    ASSERT_EQ(expiries.size(), 2u);

    cluster_.setNow(10'000);
    cluster_.handleContainerExpiry(expiries[0], policy_);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 1u); // survived
    cluster_.setNow(50'000);
    cluster_.handleContainerExpiry(expiries[1], policy_);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 0u);
}

TEST_F(ClusterStateTest, ScheduledPrewarmFallsBackAcrossTiers)
{
    // Fill high-end completely with fn 1.
    cluster_.ensureWarm(1, Tier::HighEnd, 2, 200'000);
    Event start;
    start.type = EventType::PrewarmStart;
    start.fn = 0;
    start.tier = Tier::HighEnd;
    start.expiry = 100'000;
    start.time = 0;
    cluster_.handlePrewarmStart(start, policy_);
    // Fell back to the low-end tier instead of dropping.
    EXPECT_EQ(cluster_.warmCount(0, Tier::LowEnd), 1u);
    EXPECT_EQ(cluster_.prewarmFailures(), 0u);
}

TEST_F(ClusterStateTest, EnsureWarmEvictingPreemptsOtherFunctions)
{
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 200'000); // fill tier
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    cluster_.setNow(5000);
    const std::size_t placed = cluster_.ensureWarmEvicting(
        1, Tier::HighEnd, 1, 200'000, policy_);
    EXPECT_EQ(placed, 1u);
    EXPECT_LT(cluster_.warmCount(0, Tier::HighEnd), 4u);
}

TEST_F(ClusterStateTest, EvictionSkipsEntriesWithStaleTokens)
{
    // Fill both tiers with fn 0 idles, then renew every keep-alive:
    // each renewal reschedules expiry with a bumped token, so every
    // original evict-heap entry goes stale. A renewed container is
    // unevictable until it idles again.
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 10'000);
    cluster_.ensureWarm(0, Tier::LowEnd, 4, 10'000);
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    cluster_.setNow(2000);
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 50'000);
    cluster_.ensureWarm(0, Tier::LowEnd, 4, 50'000);

    auto acq = cluster_.acquireCold(1, order_, policy_);
    EXPECT_FALSE(acq.has_value()); // every heap entry was stale
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 4u);
    EXPECT_EQ(cluster_.warmCount(0, Tier::LowEnd), 4u);

    const SimulationMetrics m = metrics_.take();
    EXPECT_EQ(m.event_loop.stale_evict_entries, 8u);
    EXPECT_EQ(m.event_loop.eviction_victims_examined, 8u);
}

TEST_F(ClusterStateTest, EvictionSparesExcludedFunctionAndRestoresIt)
{
    // High-end: two fn 0 idles (256 MB each, lowest priority) plus one
    // fn 1 idle (512 MB); low-end full of fn 1 so nothing falls back.
    cluster_.ensureWarm(0, Tier::HighEnd, 2, 200'000);
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    cluster_.setNow(2000);
    cluster_.ensureWarm(1, Tier::HighEnd, 1, 200'000);
    cluster_.ensureWarm(1, Tier::LowEnd, 2, 200'000);
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::HighEnd), 0);
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::LowEnd), 0);

    // A scheduled prewarm for fn 0 must not evict fn 0's own idles:
    // the two lowest-priority entries are spared and fn 1's goes.
    Event start;
    start.type = EventType::PrewarmStart;
    start.fn = 0;
    start.tier = Tier::HighEnd;
    start.expiry = 300'000;
    start.time = cluster_.now();
    cluster_.handlePrewarmStart(start, policy_);
    EXPECT_EQ(cluster_.prewarmFailures(), 0u);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 3u); // 2 idle + setup
    EXPECT_EQ(cluster_.warmCount(1, Tier::HighEnd), 0u);

    // The spared entries went back on the heap: a later cold start for
    // fn 1 can still evict those fn 0 idles.
    // 256 MB is already free (512 evicted - 256 prewarmed), so one
    // restored fn 0 entry covers the remaining 256 MB.
    auto acq = cluster_.acquireCold(1, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_EQ(acq->tier, Tier::HighEnd);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 2u); // idle + setup
}

TEST_F(ClusterStateTest, FailedEvictionRestoresSparedEntries)
{
    // High-end holds only fn 0 idles; low-end is full of *running*
    // fn 1 containers (running containers are never evicted).
    cluster_.ensureWarm(0, Tier::HighEnd, 4, 200'000);
    while (auto event = events_.pop()) {
        cluster_.setNow(event->time);
        if (event->type == EventType::PrewarmReady)
            cluster_.handlePrewarmReady(*event, policy_);
    }
    cluster_.setNow(2000);
    ASSERT_TRUE(cluster_.acquireCold(1, order_, policy_).has_value());
    ASSERT_TRUE(cluster_.acquireCold(1, order_, policy_).has_value());
    EXPECT_EQ(cluster_.vacantMemoryMb(Tier::LowEnd), 0);

    // Prewarming fn 0 spares all four of its own entries, finds no
    // other victim, and must fail -- leaving the heap intact.
    Event start;
    start.type = EventType::PrewarmStart;
    start.fn = 0;
    start.tier = Tier::HighEnd;
    start.expiry = 300'000;
    start.time = cluster_.now();
    cluster_.handlePrewarmStart(start, policy_);
    EXPECT_EQ(cluster_.prewarmFailures(), 1u);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 4u);

    // The restored entries still serve a different function's cold
    // start: two 256 MB idles are evicted for fn 1's 512 MB.
    auto acq = cluster_.acquireCold(1, order_, policy_);
    ASSERT_TRUE(acq.has_value());
    EXPECT_EQ(acq->tier, Tier::HighEnd);
    EXPECT_EQ(cluster_.warmCount(0, Tier::HighEnd), 2u);
}

} // namespace
