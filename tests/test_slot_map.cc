/**
 * @file
 * Tests for the generational slot map backing the container arena:
 * handle stability, O(1) erase, slot reuse with generation bumps so
 * stale handles fail to resolve.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/slot_map.hh"

namespace
{

using iceb::sim::SlotMap;

struct Payload
{
    int value = -1;
    std::string tag;
};

TEST(SlotMapTest, InsertFindEraseRoundTrip)
{
    SlotMap<Payload> map;
    EXPECT_EQ(map.size(), 0u);

    const auto a = map.insert();
    const auto b = map.insert();
    EXPECT_NE(a, b);
    EXPECT_NE(a, SlotMap<Payload>::kNoId);
    EXPECT_EQ(map.size(), 2u);

    map.at(a).value = 1;
    map.at(b).value = 2;
    EXPECT_EQ(map.find(a)->value, 1);
    EXPECT_EQ(map.find(b)->value, 2);

    map.erase(a);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.find(a), nullptr);
    EXPECT_EQ(map.find(b)->value, 2);
}

TEST(SlotMapTest, ReuseInvalidatesOldIdAndResetsValue)
{
    SlotMap<Payload> map;
    const auto old_id = map.insert();
    map.at(old_id).value = 42;
    map.at(old_id).tag = "stale";
    map.erase(old_id);

    // The freed slot is reused, under a new generation.
    const auto new_id = map.insert();
    EXPECT_EQ(SlotMap<Payload>::slotOf(new_id),
              SlotMap<Payload>::slotOf(old_id));
    EXPECT_NE(new_id, old_id);

    // The stale handle no longer resolves; the reused slot is fresh.
    EXPECT_EQ(map.find(old_id), nullptr);
    ASSERT_NE(map.find(new_id), nullptr);
    EXPECT_EQ(map.find(new_id)->value, -1);
    EXPECT_TRUE(map.find(new_id)->tag.empty());
}

TEST(SlotMapTest, FreeListReusesMostRecentlyFreedFirst)
{
    SlotMap<Payload> map;
    const auto a = map.insert();
    const auto b = map.insert();
    const auto c = map.insert();
    map.erase(a);
    map.erase(c); // freed last, reused first (LIFO)

    const auto d = map.insert();
    EXPECT_EQ(SlotMap<Payload>::slotOf(d),
              SlotMap<Payload>::slotOf(c));
    const auto e = map.insert();
    EXPECT_EQ(SlotMap<Payload>::slotOf(e),
              SlotMap<Payload>::slotOf(a));
    EXPECT_EQ(map.find(b)->value, -1);
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.capacityUsed(), 3u); // no new slots were grown
}

TEST(SlotMapTest, ManyChurnCyclesKeepHandlesDistinct)
{
    SlotMap<Payload> map;
    map.reserve(4);
    auto id = map.insert();
    for (int i = 0; i < 100; ++i) {
        const auto prev = id;
        map.erase(prev);
        id = map.insert();
        EXPECT_NE(id, prev);          // generation moved on
        EXPECT_EQ(map.find(prev), nullptr);
        ASSERT_NE(map.find(id), nullptr);
        EXPECT_EQ(SlotMap<Payload>::slotOf(id),
                  SlotMap<Payload>::slotOf(prev));
    }
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.capacityUsed(), 1u);
}

TEST(SlotMapTest, SlotIndexAccessMatchesIdAccess)
{
    SlotMap<Payload> map;
    const auto a = map.insert();
    map.at(a).value = 7;
    EXPECT_EQ(map.atSlot(SlotMap<Payload>::slotOf(a)).value, 7);
}

} // namespace
