/**
 * @file
 * Property tests for the FFT and harmonic decomposition: verified
 * against the direct O(n^2) DFT, Parseval's identity, inverse
 * round-trips, and planted-sinusoid recovery.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"
#include "math/fft.hh"
#include "math/harmonics.hh"

namespace
{

using namespace iceb::math;

std::vector<Complex>
randomSignal(std::size_t n, std::uint64_t seed)
{
    iceb::Rng rng(seed);
    std::vector<Complex> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.emplace_back(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return out;
}

double
maxDiff(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    double out = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        out = std::max(out, std::abs(a[i] - b[i]));
    return out;
}

TEST(FftTest, PowerOfTwoDetection)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(64));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(60));
}

TEST(FftTest, DcOnlySignal)
{
    const std::vector<Complex> signal(8, Complex(2.0, 0.0));
    const std::vector<Complex> spectrum = fft(signal);
    EXPECT_NEAR(spectrum[0].real(), 16.0, 1e-12);
    for (std::size_t k = 1; k < 8; ++k)
        EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-12);
}

TEST(FftTest, SingleToneLandsInOneBin)
{
    const std::size_t n = 32;
    std::vector<Complex> signal(n);
    for (std::size_t t = 0; t < n; ++t) {
        const double angle = 2.0 * M_PI * 4.0 * t / n;
        signal[t] = Complex(std::cos(angle), 0.0);
    }
    const std::vector<Complex> spectrum = fft(signal);
    EXPECT_NEAR(std::abs(spectrum[4]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(spectrum[n - 4]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(spectrum[3]), 0.0, 1e-9);
}

/** FFT equals direct DFT for power-of-two and arbitrary lengths. */
class FftLengthTest : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftLengthTest, MatchesDirectDft)
{
    const std::size_t n = GetParam();
    const std::vector<Complex> signal = randomSignal(n, 100 + n);
    const std::vector<Complex> fast = fft(signal);
    const std::vector<Complex> direct = dftDirect(signal);
    EXPECT_LT(maxDiff(fast, direct), 1e-8 * static_cast<double>(n));
}

TEST_P(FftLengthTest, InverseRoundTrip)
{
    const std::size_t n = GetParam();
    const std::vector<Complex> signal = randomSignal(n, 200 + n);
    const std::vector<Complex> back = ifft(fft(signal));
    EXPECT_LT(maxDiff(back, signal), 1e-9 * static_cast<double>(n));
}

TEST_P(FftLengthTest, ParsevalIdentityHolds)
{
    const std::size_t n = GetParam();
    const std::vector<Complex> signal = randomSignal(n, 300 + n);
    const std::vector<Complex> spectrum = fft(signal);
    double time_energy = 0.0;
    double freq_energy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        time_energy += std::norm(signal[i]);
        freq_energy += std::norm(spectrum[i]);
    }
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-7 * std::max(1.0, time_energy));
}

TEST_P(FftLengthTest, LinearityHolds)
{
    const std::size_t n = GetParam();
    const std::vector<Complex> a = randomSignal(n, 400 + n);
    const std::vector<Complex> b = randomSignal(n, 500 + n);
    std::vector<Complex> sum(n);
    for (std::size_t i = 0; i < n; ++i)
        sum[i] = a[i] + 2.0 * b[i];
    const std::vector<Complex> fa = fft(a);
    const std::vector<Complex> fb = fft(b);
    const std::vector<Complex> fsum = fft(sum);
    std::vector<Complex> expected(n);
    for (std::size_t i = 0; i < n; ++i)
        expected[i] = fa[i] + 2.0 * fb[i];
    EXPECT_LT(maxDiff(fsum, expected), 1e-7 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftLengthTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 16u,
                                           60u, 64u, 100u, 120u, 127u,
                                           128u));

// ------------------------------------------------------------ Harmonics

TEST(HarmonicsTest, SingleSinusoidRecovered)
{
    const std::size_t n = 64;
    std::vector<double> signal(n);
    for (std::size_t t = 0; t < n; ++t)
        signal[t] = 3.0 * std::cos(2.0 * M_PI * 4.0 * t / n + 0.7);
    const std::vector<Harmonic> h = decompose(signal, 3);
    ASSERT_FALSE(h.empty());
    EXPECT_NEAR(h.front().amplitude, 3.0, 1e-9);
    EXPECT_NEAR(h.front().frequency, 4.0 / 64.0, 1e-12);
    EXPECT_NEAR(h.front().phase, 0.7, 1e-9);
}

TEST(HarmonicsTest, ReconstructionMatchesSignal)
{
    const std::size_t n = 48;
    std::vector<double> signal(n);
    for (std::size_t t = 0; t < n; ++t) {
        signal[t] = 2.0 * std::cos(2.0 * M_PI * 3.0 * t / n) +
            1.0 * std::cos(2.0 * M_PI * 8.0 * t / n + 1.1);
    }
    const std::vector<Harmonic> h = decompose(signal, 0);
    for (std::size_t t = 0; t < n; ++t) {
        EXPECT_NEAR(evaluateHarmonics(h, static_cast<double>(t)),
                    signal[t], 1e-8);
    }
}

TEST(HarmonicsTest, AmplitudeOrdering)
{
    const std::size_t n = 64;
    std::vector<double> signal(n);
    for (std::size_t t = 0; t < n; ++t) {
        signal[t] = 1.0 * std::cos(2.0 * M_PI * 2.0 * t / n) +
            5.0 * std::cos(2.0 * M_PI * 7.0 * t / n);
    }
    const std::vector<Harmonic> h = decompose(signal, 2);
    ASSERT_EQ(h.size(), 2u);
    EXPECT_GT(h[0].amplitude, h[1].amplitude);
    EXPECT_NEAR(h[0].frequency, 7.0 / 64.0, 1e-12);
}

TEST(HarmonicsTest, CountSignificantHarmonics)
{
    const std::size_t n = 128;
    std::vector<double> one(n), three(n);
    for (std::size_t t = 0; t < n; ++t) {
        one[t] = std::cos(2.0 * M_PI * 4.0 * t / n);
        three[t] = std::cos(2.0 * M_PI * 4.0 * t / n) +
            0.8 * std::cos(2.0 * M_PI * 9.0 * t / n) +
            0.6 * std::cos(2.0 * M_PI * 17.0 * t / n);
    }
    EXPECT_EQ(countSignificantHarmonics(one, 0.2), 1u);
    EXPECT_EQ(countSignificantHarmonics(three, 0.2), 3u);
}

TEST(HarmonicsTest, FlatSignalHasNoHarmonics)
{
    const std::vector<double> flat(32, 5.0);
    EXPECT_EQ(countSignificantHarmonics(flat), 0u);
    EXPECT_DOUBLE_EQ(dominantPeriod(flat), 0.0);
}

TEST(HarmonicsTest, DominantPeriodDetected)
{
    const std::size_t n = 120;
    std::vector<double> signal(n);
    for (std::size_t t = 0; t < n; ++t)
        signal[t] = std::cos(2.0 * M_PI * t / 24.0); // period 24, 5 cycles
    EXPECT_NEAR(dominantPeriod(signal), 24.0, 0.6);
}

TEST(HarmonicsTest, ExtrapolationPredictsOffGridPeriod)
{
    // Period 17 does not divide the window length 60: the bin-grid
    // decomposition wraps at t = 60, the refined one extrapolates.
    const std::size_t n = 60;
    const double period = 17.0;
    std::vector<double> signal(n);
    for (std::size_t t = 0; t < n; ++t)
        signal[t] = 4.0 * std::cos(2.0 * M_PI * t / period);
    const std::vector<Harmonic> refined =
        decomposeForExtrapolation(signal, 5);
    ASSERT_FALSE(refined.empty());
    EXPECT_NEAR(1.0 / refined.front().frequency, period, 1.0);
    // One-step-ahead forecast error should be a fraction of the
    // 4.0 amplitude (the bin-grid variant would be off by up to 2x
    // the amplitude here).
    const double truth = 4.0 * std::cos(2.0 * M_PI * n / period);
    const double forecast =
        evaluateHarmonics(refined, static_cast<double>(n));
    EXPECT_NEAR(forecast, truth, 1.6);
}

TEST(HarmonicsTest, ExtrapolationHandlesShortSeries)
{
    const std::vector<double> tiny{1.0, 2.0};
    EXPECT_NO_THROW(decomposeForExtrapolation(tiny, 3));
}

// ------------------------------------------------------- FftPlan cache

TEST(FftPlanTest, GoldenBitIdenticalToFreshTransforms)
{
    // The plan precomputes exactly what the fresh code recomputes per
    // call (same twiddle recurrences, same chirp expressions, same
    // operation order), so plan transforms must match fft()/ifft()
    // bit for bit -- not merely within a tolerance. Lengths 1..64
    // cover the radix-2 path, the Bluestein path, and every
    // convolution length the latter picks in between.
    FftScratch scratch; // shared across lengths: reuse must not leak
    for (std::size_t n = 1; n <= 64; ++n) {
        const std::vector<Complex> signal =
            randomSignal(n, 0xfeed0000 + n);
        const auto plan = fftPlanFor(n);
        ASSERT_EQ(plan->size(), n);

        const std::vector<Complex> fresh_fwd = fft(signal);
        std::vector<Complex> plan_fwd(n);
        plan->forward(signal.data(), plan_fwd.data(), scratch);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(plan_fwd[i].real(), fresh_fwd[i].real())
                << "n=" << n << " bin=" << i;
            EXPECT_EQ(plan_fwd[i].imag(), fresh_fwd[i].imag())
                << "n=" << n << " bin=" << i;
        }

        const std::vector<Complex> fresh_inv = ifft(signal);
        std::vector<Complex> plan_inv(n);
        plan->inverse(signal.data(), plan_inv.data(), scratch);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(plan_inv[i].real(), fresh_inv[i].real())
                << "n=" << n << " bin=" << i;
            EXPECT_EQ(plan_inv[i].imag(), fresh_inv[i].imag())
                << "n=" << n << " bin=" << i;
        }
    }
}

TEST(FftPlanTest, CacheReturnsSameInstance)
{
    const auto a = fftPlanFor(120);
    const auto b = fftPlanFor(120);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), fftPlanFor(64).get());
}

TEST(FftPlanTest, RealForwardMatchesDirectDft)
{
    // The packed real-input path (even n) and the complex fallback
    // (odd n) must both agree with the O(n^2) definition.
    FftScratch scratch;
    for (const std::size_t n : {8u, 59u, 60u, 64u, 120u}) {
        iceb::Rng rng(0xbeef0000 + n);
        std::vector<double> real_signal(n);
        std::vector<Complex> as_complex(n);
        for (std::size_t i = 0; i < n; ++i) {
            real_signal[i] = rng.uniform(-5.0, 5.0);
            as_complex[i] = Complex(real_signal[i], 0.0);
        }
        const std::vector<Complex> expected = dftDirect(as_complex);
        std::vector<Complex> actual(n);
        fftPlanFor(n)->forwardReal(real_signal.data(), actual.data(),
                                   scratch);
        EXPECT_LT(maxDiff(actual, expected), 1e-9) << "n=" << n;

        // The fftReal() convenience wrapper routes through the same
        // plan path.
        EXPECT_LT(maxDiff(fftReal(real_signal), expected), 1e-9)
            << "n=" << n;
    }
}

// ---------------------------------------------------------- SlidingDft

TEST(SlidingDftTest, TracksFullRecomputeWithinTolerance)
{
    // Slide a random stream through both the incremental DFT and a
    // from-scratch plan transform of the same window; the retained
    // bins must stay within the predictor's 1e-6 agreement budget.
    // 120 exercises the Bluestein resync, 64 the radix-2 one.
    for (const std::size_t n : {64u, 120u}) {
        iceb::Rng rng(0x51de0000 + n);
        std::vector<double> window(n);
        for (auto &v : window)
            v = rng.uniform(0.0, 10.0);

        FftScratch scratch;
        SlidingDft sdft(n);
        EXPECT_FALSE(sdft.valid());
        sdft.resync(window.data(), n, scratch);
        ASSERT_TRUE(sdft.valid());

        const auto plan = fftPlanFor(n);
        std::vector<Complex> reference(n);
        for (int step = 0; step < 300; ++step) {
            const double incoming = rng.uniform(0.0, 10.0);
            sdft.slide(window.front(), incoming);
            window.erase(window.begin());
            window.push_back(incoming);

            plan->forwardReal(window.data(), reference.data(), scratch);
            for (std::size_t k = 0; k <= n / 2; ++k) {
                EXPECT_NEAR(std::abs(sdft.bins()[k] - reference[k]),
                            0.0, 1e-6)
                    << "n=" << n << " step=" << step << " bin=" << k;
            }
        }
    }
}

TEST(SlidingDftTest, InvalidateForcesResync)
{
    const std::size_t n = 16;
    std::vector<double> window(n, 1.0);
    FftScratch scratch;
    SlidingDft sdft(n);
    sdft.resync(window.data(), n, scratch);
    EXPECT_TRUE(sdft.valid());
    sdft.invalidate();
    EXPECT_FALSE(sdft.valid());
    sdft.resync(window.data(), n, scratch);
    EXPECT_TRUE(sdft.valid());
    EXPECT_NEAR(sdft.bins()[0].real(), static_cast<double>(n), 1e-9);
}

} // namespace
