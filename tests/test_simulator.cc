/**
 * @file
 * End-to-end simulator tests on small hand-crafted traces where the
 * expected accounting can be verified exactly: warm/cold splits under
 * the fixed keep-alive policy, Oracle behaviour, FIFO waiting, and
 * service-time composition.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "common/units.hh"
#include "policies/faascache_policy.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/oracle_policy.hh"
#include "sim/simulator.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

/** One function, invoked once in each listed interval. */
trace::Trace
traceWithPattern(const std::vector<std::uint32_t> &counts,
                 std::size_t extra_fns = 0)
{
    trace::Trace tr(counts.size(), kMsPerMinute);
    trace::FunctionSeries fn;
    fn.name = "f0";
    fn.memory_mb = 256;
    fn.avg_exec_ms = 1000;
    fn.concurrency = counts;
    tr.addFunction(fn);
    for (std::size_t i = 0; i < extra_fns; ++i) {
        trace::FunctionSeries extra = fn;
        extra.name = "fx" + std::to_string(i);
        tr.addFunction(extra);
    }
    return tr;
}

std::vector<workload::FunctionProfile>
profilesFor(const trace::Trace &tr, MemoryMb mem = 256,
            TimeMs cst = 1000, TimeMs exec = 2000)
{
    workload::FunctionProfile p;
    p.name = "test";
    p.memory_mb = mem;
    p.cold_start_ms = {cst, cst};
    p.exec_ms = {exec, 2 * exec};
    return std::vector<workload::FunctionProfile>(tr.numFunctions(), p);
}

ClusterConfig
smallCluster(MemoryMb high_mb, MemoryMb low_mb)
{
    ClusterConfig config = defaultHeterogeneousCluster();
    config.spec(Tier::HighEnd).server_count = 1;
    config.spec(Tier::HighEnd).memory_per_server_mb = high_mb;
    config.spec(Tier::LowEnd).server_count = 1;
    config.spec(Tier::LowEnd).memory_per_server_mb = low_mb;
    return config;
}

TEST(SimulatorTest, SparseArrivalsAllColdUnderShortKeepAlive)
{
    // Arrivals 30 minutes apart with a 10-minute keep-alive: every
    // invocation cold starts.
    std::vector<std::uint32_t> counts(91, 0);
    counts[0] = counts[30] = counts[60] = counts[90] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 4u);
    EXPECT_EQ(m.cold_starts, 4u);
    EXPECT_EQ(m.warm_starts, 0u);
    // Service = CST + exec on the (preferred) high-end tier.
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 3000.0);
    EXPECT_DOUBLE_EQ(m.meanWaitMs(), 0.0);
    // Each invocation leaves one wasteful 10-minute keep-alive.
    const double rate = dollarsPerGbHourToMbMs(
        cluster.spec(Tier::HighEnd).dollars_per_gb_hour);
    EXPECT_NEAR(m.totalKeepAliveCost(),
                4.0 * keepAliveCost(256, 10 * kMsPerMinute, rate),
                1e-9);
    EXPECT_DOUBLE_EQ(m.tierKeepAlive(Tier::HighEnd).successful_cost,
                     0.0);
}

TEST(SimulatorTest, DenseArrivalsWarmUnderKeepAlive)
{
    // Arrivals every 5 minutes inside the 10-minute keep-alive: only
    // the very first is cold.
    std::vector<std::uint32_t> counts(46, 0);
    for (std::size_t t = 0; t < counts.size(); t += 5)
        counts[t] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 10u);
    EXPECT_EQ(m.cold_starts, 1u);
    EXPECT_EQ(m.warm_starts, 9u);
    EXPECT_GT(m.tierKeepAlive(Tier::HighEnd).successful_cost, 0.0);
}

TEST(SimulatorTest, ConcurrentBurstNeedsMultipleContainers)
{
    // Five simultaneous invocations: each needs its own instance, so
    // with no pre-warming all five are cold.
    std::vector<std::uint32_t> counts(5, 0);
    counts[0] = 5;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 5u);
    // Arrivals spread over <= 5 s while CST + exec = 3 s; at least the
    // leading arrivals must cold start on fresh containers.
    EXPECT_GE(m.cold_starts, 3u);
}

TEST(SimulatorTest, WaitQueueWhenMemoryExhausted)
{
    // Memory fits exactly one container; three simultaneous
    // invocations must serialise with nonzero wait.
    std::vector<std::uint32_t> counts(30, 0);
    counts[0] = 3;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(256, 0);

    policies::OpenWhiskPolicy policy(0); // no keep-alive: frees memory
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 3u);
    EXPECT_EQ(m.cold_starts, 3u);
    EXPECT_GT(m.meanWaitMs(), 0.0);
}

TEST(SimulatorTest, OracleGetsAllWarmStartsAndZeroKeepAlive)
{
    std::vector<std::uint32_t> counts(60, 0);
    counts[5] = 2;
    counts[20] = 1;
    counts[40] = 3;
    const trace::Trace tr = traceWithPattern(counts, 2);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OraclePolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 18u);
    EXPECT_EQ(m.warm_starts, 18u);
    EXPECT_EQ(m.cold_starts, 0u);
    // Just-in-time: idle windows are (near) zero. Within-burst
    // double-provisioning may leave a sub-minute grace idle, so the
    // cost is bounded rather than exactly zero.
    EXPECT_LT(m.totalKeepAliveCost(), 1e-3);
    // All executions on the fast tier.
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 2000.0);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    std::vector<std::uint32_t> counts(120, 0);
    for (std::size_t t = 0; t < counts.size(); t += 7)
        counts[t] = 1 + t % 3;
    const trace::Trace tr = traceWithPattern(counts, 3);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy p1, p2;
    const SimulationMetrics a =
        runSimulation(tr, profiles, cluster, p1);
    const SimulationMetrics b =
        runSimulation(tr, profiles, cluster, p2);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_DOUBLE_EQ(a.sum_service_ms, b.sum_service_ms);
    EXPECT_DOUBLE_EQ(a.totalKeepAliveCost(), b.totalKeepAliveCost());
}

TEST(SimulatorTest, SeedChangesJitterButNotTotals)
{
    std::vector<std::uint32_t> counts(60, 0);
    counts[10] = 4;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OpenWhiskPolicy p1, p2;
    SimulatorOptions o1, o2;
    o2.seed = o1.seed + 99;
    const SimulationMetrics a = runSimulation(tr, profiles, cluster,
                                              p1, o1);
    const SimulationMetrics b = runSimulation(tr, profiles, cluster,
                                              p2, o2);
    EXPECT_EQ(a.invocations, b.invocations);
}

TEST(SimulatorTest, OverheadChargedToEveryInvocation)
{
    class OverheadPolicy : public policies::OpenWhiskPolicy
    {
      public:
        TimeMs overheadMs() const override { return 25; }
    };
    std::vector<std::uint32_t> counts(3, 0);
    counts[0] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    OverheadPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_DOUBLE_EQ(m.sum_overhead_ms, 25.0);
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 3025.0);
}

// ------------------------------------------------------------- Golden
//
// Byte-identical regression gate for the sim-core data structures: a
// fig6-style multi-scheme run over a deterministic Rng-built trace,
// with every metric field (including each float sample's bit pattern)
// folded into one FNV-1a hash. The constant below was captured from
// the seed implementation (hash-map containers, linear server scans,
// vector pools, binary event heap); any refactor of the sim layer
// must reproduce it exactly. The workload only exercises
// transcendental-free policies so the hash does not depend on libm.

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (value >> (8 * byte)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1aDouble(std::uint64_t hash, double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv1a(hash, bits);
}

std::uint64_t
hashMetrics(std::uint64_t hash, const SimulationMetrics &m)
{
    hash = fnv1a(hash, m.invocations);
    hash = fnv1a(hash, m.cold_starts);
    hash = fnv1a(hash, m.warm_starts);
    hash = fnv1a(hash, m.cold_no_container);
    hash = fnv1a(hash, m.cold_all_busy);
    hash = fnv1a(hash, m.cold_setup_attach);
    hash = fnv1aDouble(hash, m.sum_service_ms);
    hash = fnv1aDouble(hash, m.sum_wait_ms);
    hash = fnv1aDouble(hash, m.sum_cold_ms);
    hash = fnv1aDouble(hash, m.sum_exec_ms);
    hash = fnv1aDouble(hash, m.sum_overhead_ms);
    for (const auto *samples :
         {&m.service_times_ms, &m.service_times_high_ms,
          &m.service_times_low_ms}) {
        hash = fnv1a(hash, samples->size());
        for (float sample : *samples) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &sample, sizeof(bits));
            hash = fnv1a(hash, bits);
        }
    }
    for (const FunctionMetrics &fm : m.per_function) {
        hash = fnv1a(hash, fm.invocations);
        hash = fnv1a(hash, fm.cold_starts);
        hash = fnv1a(hash, fm.warm_starts);
        hash = fnv1aDouble(hash, fm.sum_service_ms);
        hash = fnv1aDouble(hash, fm.sum_wait_ms);
        hash = fnv1aDouble(hash, fm.sum_cold_ms);
        hash = fnv1aDouble(hash, fm.sum_exec_ms);
        hash = fnv1aDouble(hash, fm.keep_alive_cost);
    }
    for (int t = 0; t < kNumTiers; ++t) {
        hash = fnv1aDouble(hash, m.keep_alive[t].successful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasteful_cost);
        hash = fnv1aDouble(hash, m.keep_alive[t].wasted_mb_ms);
    }
    return hash;
}

// A deterministic bursty multi-function workload that oversubscribes
// the golden cluster's memory, so warm pools, setup attach, the wait
// queue, expiry, and eviction all fire during the golden run.
TEST(SimulatorGoldenTest, MetricsHashMatchesSeedImplementation)
{
    constexpr std::size_t kFns = 14;
    constexpr std::size_t kIntervals = 240;
    trace::Trace tr(kIntervals, kMsPerMinute);
    Rng rng(0x1CEB'601Dull);
    std::vector<workload::FunctionProfile> profiles;
    for (std::size_t fn = 0; fn < kFns; ++fn) {
        Rng stream = rng.fork(fn);
        trace::FunctionSeries series;
        series.name = "g" + std::to_string(fn);
        series.memory_mb = 128 + 128 * stream.uniformInt(1, 4);
        series.avg_exec_ms = 500 * stream.uniformInt(1, 6);
        series.concurrency.assign(kIntervals, 0);
        // Bursty arrivals: active runs separated by idle gaps sized
        // around the 10-minute baseline keep-alive so both warm hits
        // and expiries occur.
        std::size_t iv = static_cast<std::size_t>(
            stream.uniformInt(0, 12));
        while (iv < kIntervals) {
            const std::size_t burst = static_cast<std::size_t>(
                stream.uniformInt(1, 4));
            for (std::size_t b = 0; b < burst && iv < kIntervals;
                 ++b, ++iv) {
                series.concurrency[iv] = static_cast<std::uint32_t>(
                    stream.uniformInt(1, 5));
            }
            iv += static_cast<std::size_t>(stream.uniformInt(2, 18));
        }
        tr.addFunction(series);

        workload::FunctionProfile profile;
        profile.name = series.name;
        profile.memory_mb = series.memory_mb;
        profile.cold_start_ms = {
            1000 + 250 * stream.uniformInt(0, 4),
            2000 + 500 * stream.uniformInt(0, 4)};
        profile.exec_ms = {series.avg_exec_ms, 2 * series.avg_exec_ms};
        profiles.push_back(profile);
    }

    // Two small servers per tier: bursts oversubscribe memory, so
    // eviction and the FIFO wait queue both engage.
    ClusterConfig cluster = defaultHeterogeneousCluster();
    cluster.spec(Tier::HighEnd).server_count = 2;
    cluster.spec(Tier::HighEnd).memory_per_server_mb = 1536;
    cluster.spec(Tier::LowEnd).server_count = 2;
    cluster.spec(Tier::LowEnd).memory_per_server_mb = 1536;

    std::uint64_t hash = 0xcbf29ce484222325ull;
    {
        policies::OpenWhiskPolicy policy;
        hash = hashMetrics(
            hash, runSimulation(tr, profiles, cluster, policy));
    }
    {
        policies::OpenWhiskPolicy policy(2 * kMsPerMinute);
        hash = hashMetrics(
            hash, runSimulation(tr, profiles, cluster, policy));
    }
    {
        policies::FaasCachePolicy policy;
        hash = hashMetrics(
            hash, runSimulation(tr, profiles, cluster, policy));
    }
    {
        policies::OraclePolicy policy;
        hash = hashMetrics(
            hash, runSimulation(tr, profiles, cluster, policy));
    }

    constexpr std::uint64_t kSeedImplementationHash =
        0xf22c29a34a536e90ull;
    EXPECT_EQ(hash, kSeedImplementationHash)
        << "sim-core refactor changed simulation output; hash is now 0x"
        << std::hex << hash;
}

TEST(SimulatorTest, HighTierPreferredWhileItHasRoom)
{
    std::vector<std::uint32_t> counts(20, 0);
    counts[0] = 1;
    counts[10] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.service_times_high_ms.size(), 2u);
    EXPECT_TRUE(m.service_times_low_ms.empty());
}

} // namespace
