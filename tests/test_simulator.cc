/**
 * @file
 * End-to-end simulator tests on small hand-crafted traces where the
 * expected accounting can be verified exactly: warm/cold splits under
 * the fixed keep-alive policy, Oracle behaviour, FIFO waiting, and
 * service-time composition.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "policies/openwhisk_policy.hh"
#include "policies/oracle_policy.hh"
#include "sim/simulator.hh"

namespace
{

using namespace iceb;
using namespace iceb::sim;

/** One function, invoked once in each listed interval. */
trace::Trace
traceWithPattern(const std::vector<std::uint32_t> &counts,
                 std::size_t extra_fns = 0)
{
    trace::Trace tr(counts.size(), kMsPerMinute);
    trace::FunctionSeries fn;
    fn.name = "f0";
    fn.memory_mb = 256;
    fn.avg_exec_ms = 1000;
    fn.concurrency = counts;
    tr.addFunction(fn);
    for (std::size_t i = 0; i < extra_fns; ++i) {
        trace::FunctionSeries extra = fn;
        extra.name = "fx" + std::to_string(i);
        tr.addFunction(extra);
    }
    return tr;
}

std::vector<workload::FunctionProfile>
profilesFor(const trace::Trace &tr, MemoryMb mem = 256,
            TimeMs cst = 1000, TimeMs exec = 2000)
{
    workload::FunctionProfile p;
    p.name = "test";
    p.memory_mb = mem;
    p.cold_start_ms = {cst, cst};
    p.exec_ms = {exec, 2 * exec};
    return std::vector<workload::FunctionProfile>(tr.numFunctions(), p);
}

ClusterConfig
smallCluster(MemoryMb high_mb, MemoryMb low_mb)
{
    ClusterConfig config = defaultHeterogeneousCluster();
    config.spec(Tier::HighEnd).server_count = 1;
    config.spec(Tier::HighEnd).memory_per_server_mb = high_mb;
    config.spec(Tier::LowEnd).server_count = 1;
    config.spec(Tier::LowEnd).memory_per_server_mb = low_mb;
    return config;
}

TEST(SimulatorTest, SparseArrivalsAllColdUnderShortKeepAlive)
{
    // Arrivals 30 minutes apart with a 10-minute keep-alive: every
    // invocation cold starts.
    std::vector<std::uint32_t> counts(91, 0);
    counts[0] = counts[30] = counts[60] = counts[90] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 4u);
    EXPECT_EQ(m.cold_starts, 4u);
    EXPECT_EQ(m.warm_starts, 0u);
    // Service = CST + exec on the (preferred) high-end tier.
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 3000.0);
    EXPECT_DOUBLE_EQ(m.meanWaitMs(), 0.0);
    // Each invocation leaves one wasteful 10-minute keep-alive.
    const double rate = dollarsPerGbHourToMbMs(
        cluster.spec(Tier::HighEnd).dollars_per_gb_hour);
    EXPECT_NEAR(m.totalKeepAliveCost(),
                4.0 * keepAliveCost(256, 10 * kMsPerMinute, rate),
                1e-9);
    EXPECT_DOUBLE_EQ(m.tierKeepAlive(Tier::HighEnd).successful_cost,
                     0.0);
}

TEST(SimulatorTest, DenseArrivalsWarmUnderKeepAlive)
{
    // Arrivals every 5 minutes inside the 10-minute keep-alive: only
    // the very first is cold.
    std::vector<std::uint32_t> counts(46, 0);
    for (std::size_t t = 0; t < counts.size(); t += 5)
        counts[t] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 10u);
    EXPECT_EQ(m.cold_starts, 1u);
    EXPECT_EQ(m.warm_starts, 9u);
    EXPECT_GT(m.tierKeepAlive(Tier::HighEnd).successful_cost, 0.0);
}

TEST(SimulatorTest, ConcurrentBurstNeedsMultipleContainers)
{
    // Five simultaneous invocations: each needs its own instance, so
    // with no pre-warming all five are cold.
    std::vector<std::uint32_t> counts(5, 0);
    counts[0] = 5;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 5u);
    // Arrivals spread over <= 5 s while CST + exec = 3 s; at least the
    // leading arrivals must cold start on fresh containers.
    EXPECT_GE(m.cold_starts, 3u);
}

TEST(SimulatorTest, WaitQueueWhenMemoryExhausted)
{
    // Memory fits exactly one container; three simultaneous
    // invocations must serialise with nonzero wait.
    std::vector<std::uint32_t> counts(30, 0);
    counts[0] = 3;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(256, 0);

    policies::OpenWhiskPolicy policy(0); // no keep-alive: frees memory
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 3u);
    EXPECT_EQ(m.cold_starts, 3u);
    EXPECT_GT(m.meanWaitMs(), 0.0);
}

TEST(SimulatorTest, OracleGetsAllWarmStartsAndZeroKeepAlive)
{
    std::vector<std::uint32_t> counts(60, 0);
    counts[5] = 2;
    counts[20] = 1;
    counts[40] = 3;
    const trace::Trace tr = traceWithPattern(counts, 2);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OraclePolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.invocations, 18u);
    EXPECT_EQ(m.warm_starts, 18u);
    EXPECT_EQ(m.cold_starts, 0u);
    // Just-in-time: idle windows are (near) zero. Within-burst
    // double-provisioning may leave a sub-minute grace idle, so the
    // cost is bounded rather than exactly zero.
    EXPECT_LT(m.totalKeepAliveCost(), 1e-3);
    // All executions on the fast tier.
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 2000.0);
}

TEST(SimulatorTest, DeterministicAcrossRuns)
{
    std::vector<std::uint32_t> counts(120, 0);
    for (std::size_t t = 0; t < counts.size(); t += 7)
        counts[t] = 1 + t % 3;
    const trace::Trace tr = traceWithPattern(counts, 3);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy p1, p2;
    const SimulationMetrics a =
        runSimulation(tr, profiles, cluster, p1);
    const SimulationMetrics b =
        runSimulation(tr, profiles, cluster, p2);
    EXPECT_EQ(a.invocations, b.invocations);
    EXPECT_EQ(a.cold_starts, b.cold_starts);
    EXPECT_DOUBLE_EQ(a.sum_service_ms, b.sum_service_ms);
    EXPECT_DOUBLE_EQ(a.totalKeepAliveCost(), b.totalKeepAliveCost());
}

TEST(SimulatorTest, SeedChangesJitterButNotTotals)
{
    std::vector<std::uint32_t> counts(60, 0);
    counts[10] = 4;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(8192, 8192);

    policies::OpenWhiskPolicy p1, p2;
    SimulatorOptions o1, o2;
    o2.seed = o1.seed + 99;
    const SimulationMetrics a = runSimulation(tr, profiles, cluster,
                                              p1, o1);
    const SimulationMetrics b = runSimulation(tr, profiles, cluster,
                                              p2, o2);
    EXPECT_EQ(a.invocations, b.invocations);
}

TEST(SimulatorTest, OverheadChargedToEveryInvocation)
{
    class OverheadPolicy : public policies::OpenWhiskPolicy
    {
      public:
        TimeMs overheadMs() const override { return 25; }
    };
    std::vector<std::uint32_t> counts(3, 0);
    counts[0] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    OverheadPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_DOUBLE_EQ(m.sum_overhead_ms, 25.0);
    EXPECT_DOUBLE_EQ(m.meanServiceMs(), 3025.0);
}

TEST(SimulatorTest, HighTierPreferredWhileItHasRoom)
{
    std::vector<std::uint32_t> counts(20, 0);
    counts[0] = 1;
    counts[10] = 1;
    const trace::Trace tr = traceWithPattern(counts);
    const auto profiles = profilesFor(tr);
    const ClusterConfig cluster = smallCluster(4096, 4096);

    policies::OpenWhiskPolicy policy;
    const SimulationMetrics m =
        runSimulation(tr, profiles, cluster, policy);
    EXPECT_EQ(m.service_times_high_ms.size(), 2u);
    EXPECT_TRUE(m.service_times_low_ms.empty());
}

} // namespace
