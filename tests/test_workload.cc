/**
 * @file
 * Tests for profiles, the benchmark suite (including the paper's
 * Table 1 values) and the trace-to-profile matcher.
 */

#include <gtest/gtest.h>

#include "trace/synthetic.hh"
#include "workload/benchmark_suite.hh"
#include "workload/function_profile.hh"
#include "workload/profile_matcher.hh"

namespace
{

using namespace iceb;
using namespace iceb::workload;

// --------------------------------------------------------------- Profile

TEST(ProfileTest, Table1FunctionAValues)
{
    const FunctionProfile p = table1FunctionA();
    EXPECT_EQ(p.coldStartMs(Tier::LowEnd), 2630);
    EXPECT_EQ(p.execMs(Tier::LowEnd), 3130);
    EXPECT_EQ(p.coldStartMs(Tier::HighEnd), 2090);
    EXPECT_EQ(p.execMs(Tier::HighEnd), 2750);
    EXPECT_EQ(p.serviceTimeColdMs(Tier::HighEnd), 4840);
    EXPECT_EQ(p.serviceTimeWarmMs(Tier::LowEnd), 3130);
    // Table 1 metric: warm-on-low beats cold-on-high for F_A.
    EXPECT_TRUE(p.warmLowBeatsColdHigh());
}

TEST(ProfileTest, Table1FunctionBFailsMetric)
{
    const FunctionProfile p = table1FunctionB();
    // F_B: 3.01 s warm on low-end > 1.43 s cold on high-end.
    EXPECT_FALSE(p.warmLowBeatsColdHigh());
}

TEST(ProfileTest, Table1FunctionCPassesMetric)
{
    const FunctionProfile p = table1FunctionC();
    EXPECT_TRUE(p.warmLowBeatsColdHigh());
    EXPECT_EQ(p.serviceTimeColdMs(Tier::LowEnd), 3200);
}

TEST(ProfileTest, InterServerSpeedupDefinition)
{
    const FunctionProfile p = table1FunctionB();
    // (0.66 + 0.77) / (1.20 + 3.01) per the paper's definition.
    EXPECT_NEAR(p.interServerSpeedup(), 1430.0 / 4210.0, 1e-9);
    // F_B benefits hugely from high-end: ratio far below 1.
    EXPECT_LT(p.interServerSpeedup(), 0.5);
}

// ----------------------------------------------------------------- Suite

TEST(SuiteTest, StandardSuiteIsValid)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    EXPECT_GE(suite.size(), 20u);
    for (const auto &p : suite.profiles()) {
        EXPECT_GT(p.memory_mb, 0);
        for (int t = 0; t < kNumTiers; ++t) {
            const auto tier = static_cast<Tier>(t);
            EXPECT_GT(p.execMs(tier), 0) << p.name;
            EXPECT_GT(p.coldStartMs(tier), 0) << p.name;
            // Low-end never executes faster than high-end.
            EXPECT_GE(p.execMs(Tier::LowEnd), p.execMs(Tier::HighEnd))
                << p.name;
        }
    }
}

TEST(SuiteTest, MajorityPassTable1Metric)
{
    // Paper: true for more than 60% of ServerlessBench functions.
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    EXPECT_GT(suite.fractionWarmLowBeatsColdHigh(), 0.6);
    EXPECT_LT(suite.fractionWarmLowBeatsColdHigh(), 1.0);
}

TEST(SuiteTest, LookupByName)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const FunctionProfile &p =
        suite.profileByName("serverlessbench/F_A");
    EXPECT_EQ(p.execMs(Tier::HighEnd), 2750);
}

TEST(SuiteDeathTest, UnknownNameIsFatal)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    EXPECT_EXIT(suite.profileByName("nope"),
                ::testing::ExitedWithCode(1), "no benchmark profile");
}

TEST(SuiteDeathTest, IndexOutOfRangePanics)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    EXPECT_DEATH(suite.profile(suite.size()), "out of range");
}

// --------------------------------------------------------------- Matcher

TEST(MatcherTest, ExactHintsPickThatProfile)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const ProfileMatcher matcher(suite, MatchMode::ProfileOnly);
    const FunctionProfile &target =
        suite.profileByName("web/auth-check");
    const std::size_t index = matcher.matchIndex(
        target.memory_mb, target.execMs(Tier::HighEnd));
    EXPECT_EQ(suite.profile(index).name, "web/auth-check");
}

TEST(MatcherTest, ProfileOnlyUsesBenchmarkNumbers)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const ProfileMatcher matcher(suite, MatchMode::ProfileOnly);
    trace::FunctionSeries fn;
    fn.name = "synthetic";
    fn.memory_mb = 130; // close to auth-check's 128
    fn.avg_exec_ms = 100;
    const FunctionProfile p = matcher.profileFor(fn);
    EXPECT_EQ(p.memory_mb, 128);
    EXPECT_EQ(p.execMs(Tier::HighEnd), 100);
}

TEST(MatcherTest, ScaleToTracePinsExecAndMemory)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const ProfileMatcher matcher(suite, MatchMode::ScaleToTrace);
    trace::FunctionSeries fn;
    fn.name = "synthetic";
    fn.memory_mb = 333;
    fn.avg_exec_ms = 2000;
    const FunctionProfile p = matcher.profileFor(fn);
    EXPECT_EQ(p.memory_mb, 333);
    EXPECT_EQ(p.execMs(Tier::HighEnd), 2000);
    // Tier execution ratio preserved from the matched benchmark.
    const std::size_t index = matcher.matchIndex(333, 2000);
    const FunctionProfile &base = suite.profile(index);
    const double base_ratio =
        static_cast<double>(base.execMs(Tier::LowEnd)) /
        static_cast<double>(base.execMs(Tier::HighEnd));
    const double scaled_ratio =
        static_cast<double>(p.execMs(Tier::LowEnd)) /
        static_cast<double>(p.execMs(Tier::HighEnd));
    EXPECT_NEAR(scaled_ratio, base_ratio, 0.01);
    // Cold starts stay at the benchmark's measured values.
    EXPECT_EQ(p.coldStartMs(Tier::HighEnd),
              base.coldStartMs(Tier::HighEnd));
}

TEST(MatcherTest, MissingHintsUseDefaults)
{
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const ProfileMatcher matcher(suite);
    trace::FunctionSeries fn;
    fn.name = "empty";
    fn.memory_mb = 0;
    fn.avg_exec_ms = 0;
    const FunctionProfile p = matcher.profileFor(fn);
    EXPECT_GT(p.memory_mb, 0);
    EXPECT_GT(p.execMs(Tier::HighEnd), 0);
}

TEST(MatcherTest, ProfilesForWholeTrace)
{
    trace::SyntheticConfig config;
    config.num_functions = 25;
    config.num_intervals = 50;
    const trace::Trace tr =
        trace::SyntheticTraceGenerator(config).generate();
    const BenchmarkSuite suite = BenchmarkSuite::standard();
    const ProfileMatcher matcher(suite);
    const std::vector<FunctionProfile> profiles = matcher.profilesFor(tr);
    ASSERT_EQ(profiles.size(), tr.numFunctions());
    for (FunctionId fn = 0; fn < tr.numFunctions(); ++fn)
        EXPECT_EQ(profiles[fn].memory_mb, tr.function(fn).memory_mb);
}

} // namespace
