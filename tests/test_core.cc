/**
 * @file
 * Tests for IceBreaker's core: the utility score (Eq. 1), the PDM
 * (cut-offs, dynamic adjustment, ping-pong and large-memory
 * safeguards) and the assembled IceBreaker policy.
 */

#include <gtest/gtest.h>

#include "core/icebreaker.hh"
#include "core/pdm.hh"
#include "core/utility_score.hh"
#include "harness/experiment.hh"

namespace
{

using namespace iceb;
using namespace iceb::core;

// ---------------------------------------------------------- UtilityScore

TEST(UtilityScoreTest, EmptyInput)
{
    EXPECT_TRUE(computeUtilityScores({}).empty());
}

TEST(UtilityScoreTest, SingleCandidateIsNeutral)
{
    UtilityComponents c;
    c.fn = 3;
    c.true_negative = 0.9;
    c.false_positive = 0.1;
    c.speedup = 0.5;
    c.memory = 0.2;
    const auto scores = computeUtilityScores({c});
    ASSERT_EQ(scores.size(), 1u);
    EXPECT_EQ(scores[0].fn, 3u);
    // All four constant columns normalise to 0.5 -> S_u = 0.5.
    EXPECT_DOUBLE_EQ(scores[0].score, 0.5);
}

TEST(UtilityScoreTest, Equation1Directionality)
{
    // Candidate A: many missed cold starts, few wasted warm-ups, big
    // high-end speedup, small memory -> must outrank candidate B with
    // the opposite profile.
    UtilityComponents a;
    a.fn = 0;
    a.true_negative = 0.8;
    a.false_positive = 0.1;
    a.speedup = 0.3; // high-end much faster
    a.memory = 0.05;
    UtilityComponents b;
    b.fn = 1;
    b.true_negative = 0.1;
    b.false_positive = 0.9;
    b.speedup = 0.95;
    b.memory = 0.8;
    const auto scores = computeUtilityScores({a, b});
    EXPECT_GT(scores[0].score, scores[1].score);
    // With full min-max spread the extremes hit 1 and 0.
    EXPECT_DOUBLE_EQ(scores[0].score, 1.0);
    EXPECT_DOUBLE_EQ(scores[1].score, 0.0);
}

TEST(UtilityScoreTest, ScoresStayInUnitInterval)
{
    std::vector<UtilityComponents> candidates;
    for (int i = 0; i < 20; ++i) {
        UtilityComponents c;
        c.fn = static_cast<FunctionId>(i);
        c.true_negative = 0.05 * i;
        c.false_positive = 2.0 - 0.1 * i; // exceeds 1 pre-normalise
        c.speedup = 0.3 + 0.03 * i;
        c.memory = 0.01 * i;
        candidates.push_back(c);
    }
    for (const auto &score : computeUtilityScores(candidates)) {
        EXPECT_GE(score.score, 0.0);
        EXPECT_LE(score.score, 1.0);
    }
}

TEST(UtilityScoreTest, OutputOrderMatchesInput)
{
    UtilityComponents a, b;
    a.fn = 7;
    b.fn = 2;
    const auto scores = computeUtilityScores({a, b});
    EXPECT_EQ(scores[0].fn, 7u);
    EXPECT_EQ(scores[1].fn, 2u);
}

// -------------------------------------------------------------------- PDM

PdmConfig
staticConfig()
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_ping_pong_guard = false;
    config.enable_large_memory_guard = false;
    return config;
}

TEST(PdmTest, BaseCutoffsSplitTargets)
{
    Pdm pdm(3, staticConfig());
    EXPECT_EQ(pdm.decide(0, {0, 0.9}), WarmTarget::HighEnd);
    EXPECT_EQ(pdm.decide(0, {1, 0.5}), WarmTarget::LowEnd);
    EXPECT_EQ(pdm.decide(0, {2, 0.1}), WarmTarget::None);
}

TEST(PdmTest, DynamicCutoffsFollowVacancy)
{
    PdmConfig config;
    config.enable_ping_pong_guard = false;
    config.enable_large_memory_guard = false;
    Pdm pdm(1, config);

    // Both tiers full: base cut-offs.
    pdm.updateCutoffs(0.0, 0.0);
    EXPECT_NEAR(pdm.highCutoff(), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(pdm.lowCutoff(), 1.0 / 3.0, 1e-12);

    // Vacant high-end pulls its cut-off down so it attracts warm-ups.
    pdm.updateCutoffs(0.8, 0.0);
    EXPECT_LT(pdm.highCutoff(), 2.0 / 3.0);

    // Vacant low-end pulls the low cut-off down (fewer "no warm-up").
    pdm.updateCutoffs(0.0, 0.8);
    EXPECT_LT(pdm.lowCutoff(), 1.0 / 3.0);

    // Cut-offs never cross.
    pdm.updateCutoffs(1.0, 1.0);
    EXPECT_LT(pdm.lowCutoff(), pdm.highCutoff());
}

TEST(PdmTest, PingPongGuardFreezesSmallChanges)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_large_memory_guard = false;
    Pdm pdm(1, config);

    // Establish a high-end placement just above the cut-off.
    EXPECT_EQ(pdm.decide(0, {0, 0.68}), WarmTarget::HighEnd);
    // Drop just below the cut-off by < 10%: the flip is suppressed.
    EXPECT_EQ(pdm.decide(1, {0, 0.64}), WarmTarget::HighEnd);
    // A > 10% move is allowed through.
    EXPECT_EQ(pdm.decide(2, {0, 0.40}), WarmTarget::LowEnd);
}

TEST(PdmTest, PingPongGuardDoesNotBlockNoneTransitions)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_large_memory_guard = false;
    Pdm pdm(1, config);
    EXPECT_EQ(pdm.decide(0, {0, 0.35}), WarmTarget::LowEnd);
    // Dropping below the low cut-off is not a High<->Low flip.
    EXPECT_EQ(pdm.decide(1, {0, 0.32}), WarmTarget::None);
}

TEST(PdmTest, PingPongAnchorReleasesAtWindowEnd)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_large_memory_guard = false;
    config.window = 5;
    Pdm pdm(1, config);
    EXPECT_EQ(pdm.decide(0, {0, 0.68}), WarmTarget::HighEnd);
    EXPECT_EQ(pdm.decide(1, {0, 0.64}), WarmTarget::HighEnd);
    // After the window rolls, the same score places on its own merit.
    EXPECT_EQ(pdm.decide(6, {0, 0.64}), WarmTarget::LowEnd);
}

TEST(PdmTest, LargeMemoryGuardPromotesToHighEnd)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_ping_pong_guard = false;
    config.window = 4;
    Pdm pdm(1, config);
    pdm.setMemoryRatios({0.8}); // above the 0.5 threshold

    // First window: warmed only on low-end.
    EXPECT_EQ(pdm.decide(0, {0, 0.5}), WarmTarget::LowEnd);
    pdm.noteWarmed(0, Tier::LowEnd);
    // Next window: the same mid score is promoted to high-end.
    EXPECT_EQ(pdm.decide(4, {0, 0.5}), WarmTarget::HighEnd);
}

TEST(PdmTest, LargeMemoryGuardSkipsSmallFunctions)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_ping_pong_guard = false;
    config.window = 4;
    Pdm pdm(1, config);
    pdm.setMemoryRatios({0.1});
    EXPECT_EQ(pdm.decide(0, {0, 0.5}), WarmTarget::LowEnd);
    pdm.noteWarmed(0, Tier::LowEnd);
    EXPECT_EQ(pdm.decide(4, {0, 0.5}), WarmTarget::LowEnd);
}

TEST(PdmTest, LargeMemoryGuardClearsAfterHighEndWarm)
{
    PdmConfig config;
    config.enable_dynamic_cutoffs = false;
    config.enable_ping_pong_guard = false;
    config.window = 4;
    Pdm pdm(1, config);
    pdm.setMemoryRatios({0.8});
    pdm.decide(0, {0, 0.5});
    pdm.noteWarmed(0, Tier::LowEnd);
    pdm.noteWarmed(0, Tier::HighEnd); // it did reach high-end
    EXPECT_EQ(pdm.decide(4, {0, 0.5}), WarmTarget::LowEnd);
}

// ------------------------------------------------------------ IceBreaker

TEST(IceBreakerTest, EndToEndBeatsBaselineOnFriendlyTrace)
{
    trace::SyntheticConfig config;
    config.num_functions = 120;
    config.num_intervals = 600;
    const harness::Workload workload = harness::makeWorkload(config);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    const auto base = harness::runScheme(harness::Scheme::OpenWhisk,
                                         workload, cluster);
    const auto ib = harness::runScheme(harness::Scheme::IceBreaker,
                                       workload, cluster);

    // The headline property: cheaper keep-alive AND faster service.
    EXPECT_LT(ib.metrics.totalKeepAliveCost(),
              base.metrics.totalKeepAliveCost());
    EXPECT_LT(ib.metrics.meanServiceMs(), base.metrics.meanServiceMs());
    EXPECT_GT(ib.metrics.warmStartFraction(),
              base.metrics.warmStartFraction());
}

TEST(IceBreakerTest, ChargesConfiguredOverhead)
{
    IceBreakerConfig config;
    config.overhead_ms = 30;
    core::IceBreakerPolicy policy(config);
    EXPECT_EQ(policy.overheadMs(), 30);
}

TEST(IceBreakerTest, UsesBothTiers)
{
    trace::SyntheticConfig config;
    config.num_functions = 150;
    config.num_intervals = 400;
    const harness::Workload workload = harness::makeWorkload(config);
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();
    const auto result = harness::runScheme(harness::Scheme::IceBreaker,
                                           workload, cluster);
    EXPECT_GT(result.metrics.service_times_high_ms.size(), 0u);
    EXPECT_GT(result.metrics.service_times_low_ms.size(), 0u);
    // Keep-alive spend lands on both tiers too.
    EXPECT_GT(result.metrics.tierKeepAlive(Tier::HighEnd).totalCost(),
              0.0);
    EXPECT_GT(result.metrics.tierKeepAlive(Tier::LowEnd).totalCost(),
              0.0);
}

TEST(IceBreakerTest, KeepAliveExtensionsFollowPredictedGap)
{
    // White-box: with no prediction state the keep-alive runs to the
    // next boundary plus grace only.
    trace::Trace tr(10, 60'000);
    trace::FunctionSeries fn;
    fn.name = "f";
    fn.memory_mb = 128;
    fn.avg_exec_ms = 500;
    fn.concurrency.assign(10, 0);
    tr.addFunction(fn);
    workload::FunctionProfile profile;
    profile.name = "p";
    profile.memory_mb = 128;
    profile.cold_start_ms = {500, 500};
    profile.exec_ms = {400, 800};
    std::vector<workload::FunctionProfile> profiles{profile};
    const sim::ClusterConfig cluster =
        sim::defaultHeterogeneousCluster();

    core::IceBreakerPolicy policy;
    sim::SimContext ctx;
    ctx.num_functions = tr.numFunctions();
    ctx.profiles = &profiles;
    ctx.cluster = &cluster;
    ctx.interval_ms = 60'000;
    policy.initialize(ctx);
    const TimeMs ka =
        policy.keepAliveAfterExecutionMs(0, Tier::HighEnd, 30'000);
    EXPECT_GE(ka, 30'000);
    EXPECT_LE(ka, 32'000);
}

} // namespace
